//! Per-node actor state and the protocol state machine.
//!
//! A node owns its identifier, link table, successor list, store shard and
//! RPC table; it reacts to delivered [`Payload`]s and timer expiries, and
//! the only externally visible effect of handling a message is the set of
//! messages it sends — the actor contract the runtime's determinism
//! argument rests on.
//!
//! Routing is *recursive*: a [`Payload::Request`] is forwarded greedily
//! hop by hop. Each node keeps a [`PatchedOverlay`] over its own link
//! table (its partial view of the overlay, maintained incrementally —
//! joins, leaves and relinks land as O(links) patches, never a graph
//! rebuild) and asks [`PatchedOverlay::next_toward`] under the clockwise
//! metric, keeping the hop only when it makes strict progress — exactly
//! the greedy rule the shared routing engine applies. No strictly-closer
//! link means this node is the key's responsible node (greedy local
//! minimum = clockwise predecessor), and it answers the origin directly.
//! Because every hop strictly decreases the clockwise distance to the
//! key, requests cannot cycle even across stale link tables mid-churn.

use crate::cache::NodeCache;
use crate::clock::Tick;
use crate::msg::{Command, Completion, JoinGrant, Op, Outcome, Payload, RpcResult};
use crate::rpc::{RetryDecision, RpcTable};
use crate::runtime::RuntimeConfig;
use crate::shard::Shard;
use crate::transport::{Envelope, Mailboxes, Transport};
use canon_id::metric::Clockwise;
use canon_id::ring::SortedRing;
use canon_id::NodeId;
use canon_overlay::engine::HOP_LIMIT;
use canon_overlay::{HopCount, HopEvent, NodeIndex, PatchedOverlay, RouteObserver};
use canon_store::{ContentId, Policy};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Cachers the owner tracks per key for invalidation fan-out. A node is
/// never filled without being registered first — the bound trades fill
/// coverage (extra cache misses) for bounded owner memory, never
/// coherence.
const CACHE_REGISTRY_CAP: usize = 32;

/// A [`RouteObserver`] sink collecting latency samples from
/// [`HopEvent::Hop`] events — request origins stream one synthetic hop
/// per completed RPC (origin → responder, priced at the round-trip time),
/// so percentile reporting in the load harness runs off the same observer
/// machinery as every other measurement in the workspace.
#[derive(Clone, Debug, Default)]
pub struct LatencySink {
    samples: Vec<f64>,
}

impl LatencySink {
    /// The collected samples, in arrival order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl RouteObserver for LatencySink {
    fn on_event(&mut self, event: &HopEvent) {
        if let HopEvent::Hop { latency, .. } = event {
            self.samples.push(*latency);
        }
    }
}

/// Per-node message accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct NodeStats {
    /// Requests forwarded to a next hop.
    pub forwarded: u64,
    /// Requests served as the responsible node.
    pub served: u64,
    /// Replica writes accepted.
    pub replicas_stored: u64,
    /// Responses for unknown request ids (retransmission duplicates).
    pub duplicate_responses: u64,
    /// Sends to identifiers missing from the directory.
    pub undeliverable: u64,
    /// Sends the transport dropped (loss or partition).
    pub network_drops: u64,
    /// Messages discarded because this node has left.
    pub dropped_dead: u64,
    /// Requests dropped at the defensive hop budget.
    pub hop_limit_drops: u64,
    /// Retransmissions sent after a deadline expired.
    pub retransmits: u64,
}

/// One routed request as it travels hop to hop (and as parked in
/// [`NodeState::deferred`]): `(origin, req, attempt, hops, op, path)`.
pub type RoutedRequest = (NodeId, u64, u32, u32, Op, Vec<NodeId>);

/// The network context a node handles messages in: shared mailboxes, the
/// transport, the id → slot directory, and the current tick.
pub(crate) struct Net<'a> {
    pub boxes: &'a Mailboxes<Payload>,
    pub transport: &'a dyn Transport,
    pub directory: &'a BTreeMap<u64, usize>,
    pub now: Tick,
}

/// One node's complete state.
#[derive(Debug)]
pub(crate) struct NodeState {
    pub id: NodeId,
    /// This node's mailbox slot (also its [`NodeIndex`] in hop events).
    pub slot: usize,
    /// Out-links (the Crescendo link table).
    pub links: BTreeSet<NodeId>,
    /// Global-ring successors, nearest first (the root-level leaf set;
    /// replication targets and leave-repair fallback).
    pub succ_list: Vec<NodeId>,
    /// Global-ring predecessor.
    pub pred: Option<NodeId>,
    /// Patch overlay over `{self} ∪ links`: the node's partial view of
    /// the network, maintained by O(links) patches as the link table
    /// evolves and compacted periodically.
    view: PatchedOverlay,
    /// The store shard (a content-addressed backend behind a `u64` façade).
    pub shard: Shard,
    /// Keys pinned at this node: join handovers copy them instead of
    /// moving them, so this node keeps serving them.
    pub pinned: BTreeSet<u64>,
    pub rpc: RpcTable,
    /// Armed deadlines as `(tick, req)`.
    timers: BinaryHeap<Reverse<(Tick, u64)>>,
    /// Per-sender message sequence (unique per send).
    seq: u64,
    /// Bootstrap contact, kept so join retransmissions can re-enter the
    /// overlay before any links exist.
    bootstrap: Option<NodeId>,
    /// Set when the node has left: everything delivered is discarded.
    pub dead: bool,
    /// Whether this node is an acknowledged ring member. Seeded nodes
    /// start joined; a blank spawn becomes joined when its join grant
    /// arrives ([`NodeState::apply_grant`]). Until then its view is empty,
    /// so greedy routing would declare it responsible for *every* key —
    /// routed requests that arrive early are parked in `deferred` instead
    /// of being served from the empty view.
    pub joined: bool,
    /// Routed requests that arrived before this node joined, replayed in
    /// arrival order by [`NodeState::apply_grant`].
    pub deferred: Vec<RoutedRequest>,
    /// Messages staged for the framing layer this round as
    /// `(destination slot, envelope)`. Only used when the transport stack
    /// frames ([`Transport::framing`] returns a view); the runtime flushes
    /// it into coalesced frames at the end of the node's round. Always
    /// empty between rounds.
    pub outbox: Vec<(usize, Envelope<Payload>)>,
    /// Model-checking fault: grant joins but "forget" to attach the
    /// handed-over shard entries (they are still removed locally) — the
    /// seeded lost-key-range bug the protocol checker's regression test
    /// must find, minimize and replay.
    #[cfg(feature = "model")]
    pub broken_handover: bool,
    pub stats: NodeStats,
    /// The en-route read cache ([`crate::cache`]); inert at capacity 0.
    pub cache: NodeCache,
    /// Owner side of cache coherence: per-key write stamps (versions),
    /// bumped on every value-changing PUT this node serves. Only
    /// maintained while caching is enabled.
    write_stamps: BTreeMap<u64, u64>,
    /// Owner side of cache coherence: the cachers registered per key —
    /// the invalidation fan-out set, capped at [`CACHE_REGISTRY_CAP`].
    cache_registry: BTreeMap<u64, BTreeSet<NodeId>>,
    /// Forwarding-side observer sink.
    pub hop_sink: HopCount,
    /// Origin-side RTT observer sink.
    pub rtt_sink: LatencySink,
    pub completions: Vec<Completion>,
    /// Deterministic event log (only populated when recording).
    pub events: Vec<String>,
    record: bool,
    /// The replica placement policy (shared with canon-store's engine).
    policy: Policy,
    succ_len: usize,
}

impl NodeState {
    pub fn new(
        id: NodeId,
        slot: usize,
        links: BTreeSet<NodeId>,
        succ_list: Vec<NodeId>,
        pred: Option<NodeId>,
        joined: bool,
        cfg: &RuntimeConfig,
    ) -> NodeState {
        let mut state = NodeState {
            id,
            slot,
            links,
            succ_list,
            pred,
            view: PatchedOverlay::empty(),
            shard: Shard::new(cfg.backend.create(id)),
            pinned: BTreeSet::new(),
            rpc: RpcTable::new(cfg.rpc),
            timers: BinaryHeap::new(),
            seq: 0,
            bootstrap: None,
            dead: false,
            joined,
            deferred: Vec::new(),
            outbox: Vec::new(),
            #[cfg(feature = "model")]
            broken_handover: false,
            stats: NodeStats::default(),
            cache: NodeCache::new(cfg.cache),
            write_stamps: BTreeMap::new(),
            cache_registry: BTreeMap::new(),
            hop_sink: HopCount::default(),
            rtt_sink: LatencySink::default(),
            completions: Vec::new(),
            events: Vec::new(),
            record: cfg.record_events,
            policy: cfg.policy,
            succ_len: cfg.succ_list_len,
        };
        state.sync_view();
        state
    }

    /// Earliest *live* armed timer, if any. Timers for already-answered
    /// requests (and all timers of a departed node) are stale; they are
    /// discarded here so an idle check never waits out a deadline that can
    /// no longer matter.
    pub fn next_timer(&mut self) -> Option<Tick> {
        while let Some(&Reverse((t, req))) = self.timers.peek() {
            if self.dead || !self.rpc.is_inflight(req) {
                self.timers.pop();
                continue;
            }
            return Some(t);
        }
        None
    }

    fn log(&mut self, now: Tick, line: impl FnOnce() -> String) {
        if self.record {
            self.events.push(format!("t={now} {} {}", self.id, line()));
        }
    }

    /// Reconciles the patch-overlay view with the link table: newly
    /// learned peers join, dropped peers leave, and `self`'s row is
    /// relinked — a handful of O(links) patches against a view of size
    /// `links + 1`, compacted once the patch list outgrows the base.
    fn sync_view(&mut self) {
        if !self.view.contains(self.id) {
            self.view.apply_join(self.id, Vec::new());
        }
        for peer in self.view.ids() {
            if peer != self.id && !self.links.contains(&peer) {
                self.view.apply_leave(peer);
            }
        }
        for &l in &self.links {
            if !self.view.contains(l) {
                self.view.apply_join(l, Vec::new());
            }
        }
        self.view
            .relink(self.id, self.links.iter().copied().collect());
        if self.view.should_compact() {
            self.view.compact();
        }
    }

    /// The greedy next hop toward `key` from this node's partial view:
    /// the distance-minimizing link, kept only on strict progress — the
    /// same rule the shared routing engine's greedy policy applies, read
    /// straight off the patch overlay. `None` means this node is
    /// responsible.
    fn next_hop(&self, key: NodeId) -> Option<NodeId> {
        match self.view.next_toward(Clockwise, self.id, key) {
            Some((nb, d)) if d < self.id.clockwise_to(key) => Some(nb),
            _ => None,
        }
    }

    /// Sends `payload` to `to`, returning the delivery tick if the message
    /// entered a mailbox.
    fn send(&mut self, net: &Net<'_>, to: NodeId, payload: Payload) -> Option<Tick> {
        let Some(&slot) = net.directory.get(&to.raw()) else {
            self.stats.undeliverable += 1;
            return None;
        };
        self.seq += 1;
        let env = Envelope {
            from: self.id,
            to,
            sent_at: net.now,
            deliver_at: 0,
            seq: self.seq,
            payload,
        };
        let sent = match net.transport.framing() {
            // Unframed stack: straight into the destination mailbox.
            None => net.boxes.send(net.transport, slot, env),
            // Faults sit *outside* the framing layer, so fate is decided
            // per frame, not per message: stage unconditionally and let
            // the end-of-round flush ask the transport once per frame.
            // Delivery is reported optimistically (a dropped frame
            // surfaces as a timeout and retransmit at the origin).
            Some(view) if view.per_frame => {
                self.outbox.push((slot, env));
                return Some(net.now + 1);
            }
            // Faults (if any) sit *inside* the framing layer: decide this
            // message's fate and delivery tick now, with its own sequence
            // number — exactly as an unframed run would — and stage the
            // survivors for coalescing by delivery tick.
            Some(_) => match net.transport.schedule(net.now, self.id, to, self.seq) {
                Some(t) => {
                    let mut env = env;
                    env.deliver_at = t;
                    self.outbox.push((slot, env));
                    Some(t)
                }
                None => None,
            },
        };
        if sent.is_none() {
            self.stats.network_drops += 1;
        }
        sent
    }

    /// Handles one delivered message.
    pub fn handle(&mut self, net: &Net<'_>, env: Envelope<Payload>) {
        if self.dead {
            self.stats.dropped_dead += 1;
            return;
        }
        match env.payload {
            Payload::Client(Command::Issue(op)) => self.open_rpc(net, op),
            Payload::Client(Command::Join { bootstrap }) => {
                self.bootstrap = Some(bootstrap);
                self.open_rpc(net, Op::Join { joiner: self.id });
            }
            Payload::Client(Command::Leave) => self.do_leave(net),
            Payload::Request {
                origin,
                req,
                attempt,
                hops,
                op,
                path,
            } => self.route_or_serve(net, (origin, req, attempt, hops, op, path)),
            Payload::Response { req, hops, result } => self.on_response(net, req, hops, result),
            Payload::Replicate { key, value } => {
                self.shard.insert(key, value);
                self.stats.replicas_stored += 1;
            }
            Payload::RepairJoin { joined } => self.repair_join(net, joined),
            Payload::LeaveHandoff { departing, shard } => {
                self.log(net.now, || format!("handoff from {departing}"));
                self.shard.extend(shard);
            }
            Payload::LeaveNotice {
                departing,
                successor,
                predecessor,
            } => self.repair_leave(net, departing, successor, predecessor),
            Payload::CacheFill {
                key,
                value,
                stamp,
                owner,
                cid,
                level,
            } => {
                let outcome = self.cache.fill(key, value, stamp, owner, cid, level);
                self.log(net.now, || {
                    format!("cache fill key={key} value={value} stamp={stamp} owner={owner} {outcome:?}")
                });
            }
            Payload::CacheInvalidate { key, owner, floor } => {
                self.cache.invalidate(key, owner, floor);
                self.log(net.now, || {
                    format!("cache invalidate key={key} owner={owner} floor={floor}")
                });
            }
        }
    }

    /// Fires every timer due at or before `now`.
    pub fn fire_timers(&mut self, net: &Net<'_>) -> usize {
        let mut fired = 0;
        while let Some(&Reverse((t, req))) = self.timers.peek() {
            if t > net.now {
                break;
            }
            self.timers.pop();
            fired += 1;
            if self.dead {
                continue;
            }
            self.on_timer(net, req);
        }
        fired
    }

    // ----- RPC origin side -----

    fn open_rpc(&mut self, net: &Net<'_>, op: Op) {
        let (req, deadline) = self.rpc.open(op.clone(), net.now);
        self.timers.push(Reverse((deadline, req)));
        self.log(net.now, || {
            format!("open req={req} {:?} key={}", op.kind(), op.key_point())
        });
        self.transmit(net, req, 0, op);
    }

    /// Sends (or resends) the first hop of request `req`.
    fn transmit(&mut self, net: &Net<'_>, req: u64, attempt: u32, op: Op) {
        // A GET is answered from the origin's own en-route cache when it
        // holds a fresh copy — no network traffic at all.
        if let Op::Get { key } = op {
            if let Some(value) = self.cache.lookup(key) {
                self.log(net.now, || format!("cache hit key={key} (origin)"));
                let result = RpcResult::Value {
                    value: Some(value),
                    served_by: self.id,
                };
                self.on_response(net, req, 0, result);
                return;
            }
        }
        // A joining node has no links yet: its join request enters the
        // overlay through the bootstrap contact instead of its own view.
        let via_bootstrap = match (&op, self.bootstrap) {
            (Op::Join { .. }, Some(b)) if self.links.is_empty() => Some(b),
            _ => None,
        };
        let next = via_bootstrap.or_else(|| self.next_hop(op.key_point()));
        match next {
            None => {
                // This node is itself responsible: serve without touching
                // the network.
                let result = self.serve(net, op, &[]);
                self.stats.served += 1;
                self.on_response(net, req, 0, result);
            }
            Some(nb) => {
                self.observe_forward(net, nb);
                // GETs accumulate the hop path so the responsible node can
                // plant fills along it (paper §4.2).
                let path = if self.cache.enabled() && matches!(op, Op::Get { .. }) {
                    vec![self.id]
                } else {
                    Vec::new()
                };
                self.send(
                    net,
                    nb,
                    Payload::Request {
                        origin: self.id,
                        req,
                        attempt,
                        hops: 1,
                        op,
                        path,
                    },
                );
            }
        }
    }

    fn on_timer(&mut self, net: &Net<'_>, req: u64) {
        match self.rpc.retry(req, net.now) {
            RetryDecision::Stale => {}
            RetryDecision::Retry {
                op,
                attempt,
                deadline,
            } => {
                self.timers.push(Reverse((deadline, req)));
                self.stats.retransmits += 1;
                self.log(net.now, || format!("retry req={req} attempt={attempt}"));
                self.transmit(net, req, attempt, op);
            }
            RetryDecision::GiveUp(p) => {
                self.log(net.now, || format!("giveup req={req}"));
                self.completions.push(Completion {
                    origin: self.id,
                    req,
                    kind: p.op.kind(),
                    key: p.op.key_point().raw(),
                    outcome: Outcome::TimedOut,
                    responder: None,
                    value: None,
                    hops: 0,
                    attempts: p.attempt + 1,
                    issued_at: p.issued_at,
                    completed_at: net.now,
                });
            }
        }
    }

    fn on_response(&mut self, net: &Net<'_>, req: u64, hops: u32, result: RpcResult) {
        let Some(p) = self.rpc.resolve(req) else {
            self.stats.duplicate_responses += 1;
            self.log(net.now, || format!("dup req={req}"));
            return;
        };
        let (outcome, responder, value) = match &result {
            RpcResult::Found { responsible } => (Outcome::Ok, Some(*responsible), None),
            RpcResult::Stored { primary, .. } => (Outcome::Ok, Some(*primary), None),
            RpcResult::Value { value, served_by } => (
                if value.is_some() {
                    Outcome::Ok
                } else {
                    Outcome::NotFound
                },
                Some(*served_by),
                *value,
            ),
            RpcResult::Granted(grant) => (Outcome::Ok, Some(grant.predecessor), None),
            RpcResult::Status {
                primary, expected, ..
            } => (Outcome::Ok, Some(*primary), Some(u64::from(*expected))),
            RpcResult::PinAck { primary, pinned } => {
                (Outcome::Ok, Some(*primary), Some(u64::from(*pinned)))
            }
        };
        if let RpcResult::Granted(grant) = result {
            self.apply_grant(net, grant);
        }
        // Stream the round trip into the origin-side observer sink: one
        // synthetic hop origin → responder priced at the RTT.
        let to = responder
            .and_then(|r| net.directory.get(&r.raw()))
            .map_or(NodeIndex(self.slot as u32), |&s| NodeIndex(s as u32));
        let rtt = (net.now - p.issued_at) as f64;
        self.rtt_sink.on_event(&HopEvent::Hop {
            from: NodeIndex(self.slot as u32),
            to,
            latency: rtt,
        });
        self.log(net.now, || {
            format!("done req={req} {outcome:?} hops={hops}")
        });
        self.completions.push(Completion {
            origin: self.id,
            req,
            kind: p.op.kind(),
            key: p.op.key_point().raw(),
            outcome,
            responder,
            value,
            hops,
            attempts: p.attempt + 1,
            issued_at: p.issued_at,
            completed_at: net.now,
        });
    }

    // ----- server side -----

    fn route_or_serve(&mut self, net: &Net<'_>, request: RoutedRequest) {
        let (origin, req, attempt, hops, op, mut path) = request;
        if hops as usize > HOP_LIMIT {
            self.stats.hop_limit_drops += 1;
            return;
        }
        // A neighbor can learn of a joiner (via `RepairJoin` from the
        // granter) and route to it before the joiner's own grant response
        // has arrived. Serving from the still-empty view would claim
        // responsibility for every key; park the request until the grant
        // installs a real view.
        if !self.joined && origin != self.id {
            self.deferred.push((origin, req, attempt, hops, op, path));
            return;
        }
        // Path convergence (paper §5) funnels requests for a key through
        // shared intermediate nodes: a fresh en-route copy short-circuits
        // the rest of the route.
        if let Op::Get { key } = op {
            if origin != self.id {
                if let Some(value) = self.cache.lookup(key) {
                    self.log(net.now, || {
                        format!("cache hit key={key} value={value} for {origin}")
                    });
                    let result = RpcResult::Value {
                        value: Some(value),
                        served_by: self.id,
                    };
                    self.send(net, origin, Payload::Response { req, hops, result });
                    return;
                }
            }
        }
        match self.next_hop(op.key_point()) {
            Some(nb) => {
                self.stats.forwarded += 1;
                self.observe_forward(net, nb);
                if self.cache.enabled() && matches!(op, Op::Get { .. }) {
                    path.push(self.id);
                }
                self.send(
                    net,
                    nb,
                    Payload::Request {
                        origin,
                        req,
                        attempt,
                        hops: hops + 1,
                        op,
                        path,
                    },
                );
            }
            None => {
                let result = self.serve(net, op, &path);
                self.stats.served += 1;
                self.log(net.now, || format!("serve req={req} for {origin}"));
                if origin == self.id {
                    self.on_response(net, req, hops, result);
                } else {
                    self.send(net, origin, Payload::Response { req, hops, result });
                }
            }
        }
    }

    /// After serving a GET, plants the value at every node the request
    /// passed through (paper §4.2's response-path population: the path
    /// crosses one proxy per level, so filling the path fills the proxy of
    /// every level crossed). A cacher is filled only if it can be
    /// registered for invalidation — never fill without registering, or an
    /// overwrite could leave a stale copy the fan-out cannot reach. The
    /// level annotation is the cacher's hop distance from this owner:
    /// path-convergence makes near-owner copies (small level) the ones
    /// that intercept traffic from everywhere, which is exactly what the
    /// cache's evict-largest-level-first policy keeps longest.
    fn send_cache_fills(&mut self, net: &Net<'_>, key: u64, value: u64, path: &[NodeId]) {
        if !self.cache.enabled() || path.is_empty() {
            return;
        }
        let stamp = self.write_stamps.get(&key).copied().unwrap_or(0);
        let cid = ContentId::of(&value.to_le_bytes()).raw();
        let total = path.len() as u32;
        let mut seen = BTreeSet::new();
        for (i, &cacher) in path.iter().enumerate() {
            if cacher == self.id || !seen.insert(cacher) {
                continue;
            }
            {
                let registered = self.cache_registry.entry(key).or_default();
                if !registered.contains(&cacher) {
                    if registered.len() >= CACHE_REGISTRY_CAP {
                        continue;
                    }
                    registered.insert(cacher);
                }
            }
            let level = total - i as u32;
            self.send(
                net,
                cacher,
                Payload::CacheFill {
                    key,
                    value,
                    stamp,
                    owner: self.id,
                    cid,
                    level,
                },
            );
        }
    }

    /// Invalidates every registered cacher of `key`, flooring out every
    /// fill this owner ever stamped — sent when responsibility for the key
    /// moves (join handover, graceful leave), so entries from the old
    /// owner cannot outlive its authority. A *crashed* owner sends
    /// nothing; that window is the protocol checker's
    /// invalidate-racing-crash scenario.
    fn invalidate_cachers(&mut self, net: &Net<'_>, key: u64) {
        let Some(cachers) = self.cache_registry.remove(&key) else {
            return;
        };
        let floor = self.write_stamps.remove(&key).unwrap_or(0) + 1;
        for cacher in cachers {
            self.send(
                net,
                cacher,
                Payload::CacheInvalidate {
                    key,
                    owner: self.id,
                    floor,
                },
            );
        }
    }

    fn observe_forward(&mut self, net: &Net<'_>, to: NodeId) {
        let from = NodeIndex(self.slot as u32);
        let to = net
            .directory
            .get(&to.raw())
            .map_or(from, |&s| NodeIndex(s as u32));
        self.hop_sink.on_event(&HopEvent::Attempt { from, to });
        self.hop_sink.on_event(&HopEvent::Hop {
            from,
            to,
            latency: 1.0,
        });
    }

    /// Replica targets for a key this node is responsible for, from the
    /// shared canon-store policy engine projected onto the node's partial
    /// ring view (`{self} ∪ successor list`). Because this node is the
    /// key's responsible node and the successor list holds its nearest
    /// clockwise successors, the projection walks `[self, succ₀, succ₁, …]`
    /// — for `Policy::Fixed(k)` this is byte-identical to the pre-policy
    /// rule `self + succ_list.take(k − 1)`.
    fn replica_targets(&self, point: NodeId) -> Vec<NodeId> {
        let mut members = Vec::with_capacity(self.succ_list.len() + 1);
        members.push(self.id);
        members.extend(self.succ_list.iter().copied());
        let ring = SortedRing::new(members);
        self.policy.replicas_on_ring(&ring, point)
    }

    /// Serves `op` as the responsible node. `path` is the request's route
    /// (origin first), the fan-out set for cache fills on GETs.
    fn serve(&mut self, net: &Net<'_>, op: Op, path: &[NodeId]) -> RpcResult {
        match op {
            Op::Lookup { .. } => RpcResult::Found {
                responsible: self.id,
            },
            Op::Put { key, value } => {
                let prev = self.shard.get(key);
                self.shard.insert(key, value);
                if self.cache.enabled() && prev != Some(value) {
                    // Bump the key's version; on an overwrite, tell every
                    // registered cacher *before* the Stored ack is sent, so
                    // on a FIFO link the invalidation is never behind the
                    // ack (read-your-writes).
                    let stamp = self.write_stamps.entry(key).or_insert(0);
                    *stamp += 1;
                    let floor = *stamp;
                    if prev.is_some() {
                        for cacher in self.cache_registry.remove(&key).unwrap_or_default() {
                            self.send(
                                net,
                                cacher,
                                Payload::CacheInvalidate {
                                    key,
                                    owner: self.id,
                                    floor,
                                },
                            );
                        }
                    }
                }
                let targets = self.replica_targets(NodeId::new(key));
                let mut replicas = 0u32;
                for s in targets {
                    if s == self.id {
                        continue;
                    }
                    if self
                        .send(net, s, Payload::Replicate { key, value })
                        .is_some()
                    {
                        replicas += 1;
                    }
                }
                RpcResult::Stored {
                    primary: self.id,
                    replicas,
                }
            }
            Op::Get { key } => {
                let value = self.shard.get(key);
                if let Some(v) = value {
                    self.send_cache_fills(net, key, v, path);
                }
                RpcResult::Value {
                    value,
                    served_by: self.id,
                }
            }
            Op::Join { joiner } => RpcResult::Granted(self.grant_join(net, joiner)),
            Op::Status { key } => RpcResult::Status {
                primary: self.id,
                expected: self.replica_targets(NodeId::new(key)).len() as u32,
                pinned: self.pinned.contains(&key),
            },
            Op::Pin { key } => {
                self.pinned.insert(key);
                RpcResult::PinAck {
                    primary: self.id,
                    pinned: true,
                }
            }
            Op::Unpin { key } => {
                self.pinned.remove(&key);
                RpcResult::PinAck {
                    primary: self.id,
                    pinned: false,
                }
            }
        }
    }

    // ----- join/leave repair (the canon-sim churn protocol, as messages) -----

    /// As the joiner's predecessor: hand over state, adopt the newcomer,
    /// and notify the neighborhood.
    fn grant_join(&mut self, net: &Net<'_>, joiner: NodeId) -> JoinGrant {
        // Primary keys in [joiner, old successor) move: those are exactly
        // the keys whose responsible node (largest id ≤ key) becomes the
        // joiner. Replica copies held for other primaries (clockwise
        // distance at or past the old successor) stay put.
        let j_dist = self.id.clockwise_to(joiner);
        let s_dist = self.succ_list.first().map(|&s| self.id.clockwise_to(s));
        let me = self.id;
        let handed: Vec<(u64, u64)> = self
            .shard
            .entries()
            .into_iter()
            .filter(|&(k, _)| {
                let d = me.clockwise_to(NodeId::new(k));
                d >= j_dist && s_dist.is_none_or(|s| d < s)
            })
            .collect();
        for (k, _) in &handed {
            // Pinned keys are copied, not moved: the newcomer becomes
            // responsible, but this node keeps serving its pinned copy.
            if !self.pinned.contains(k) {
                self.shard.remove(*k);
            }
            // Responsibility moves with the key: cached copies stamped by
            // this owner must not outlive its authority (the newcomer's
            // fills carry its own identity and fresh stamps).
            self.invalidate_cachers(net, *k);
        }
        #[allow(unused_mut)]
        let mut grant = JoinGrant {
            predecessor: self.id,
            links: self.links.iter().copied().collect(),
            succ_list: self.succ_list.clone(),
            shard: handed,
        };
        #[cfg(feature = "model")]
        if self.broken_handover {
            // Seeded bug: the handed range was removed above but never
            // reaches the joiner — a lost key range under Fixed(1).
            grant.shard.clear();
        }
        // Adopt the newcomer as immediate successor.
        let notify: BTreeSet<NodeId> = self
            .links
            .iter()
            .chain(self.succ_list.iter())
            .copied()
            .chain(self.pred)
            .filter(|&n| n != self.id && n != joiner)
            .collect();
        // Distance-sorted insertion (not `insert(0, _)`): under concurrent
        // joins of adjacent ids a second grant can arrive after a nearer
        // successor is already known, and the newcomer is then *not* the
        // head of the list.
        self.insert_succ(joiner);
        self.links.insert(joiner);
        self.sync_view();
        self.log(net.now, || format!("grant join {joiner}"));
        for n in notify {
            self.send(net, n, Payload::RepairJoin { joined: joiner });
        }
        grant
    }

    /// As the joiner: install the granted state.
    fn apply_grant(&mut self, net: &Net<'_>, grant: JoinGrant) {
        self.pred = Some(grant.predecessor);
        self.links = grant
            .links
            .into_iter()
            .chain(std::iter::once(grant.predecessor))
            .filter(|&n| n != self.id)
            .collect();
        self.succ_list = grant
            .succ_list
            .into_iter()
            .filter(|&n| n != self.id)
            .take(self.succ_len)
            .collect();
        self.shard.extend(grant.shard);
        self.sync_view();
        self.joined = true;
        self.log(net.now, || format!("joined after {}", grant.predecessor));
        // Replay requests that were routed here before the grant arrived,
        // in arrival order, now that the view can actually route them.
        for request in std::mem::take(&mut self.deferred) {
            self.route_or_serve(net, request);
        }
    }

    /// A neighbor learned that `joined` is live.
    fn repair_join(&mut self, _net: &Net<'_>, joined: NodeId) {
        if joined == self.id {
            return;
        }
        self.insert_succ(joined);
        let better_pred = match self.pred {
            None => true,
            Some(p) => p != joined && p.clockwise_to(joined) < p.clockwise_to(self.id),
        };
        if better_pred && joined != self.id {
            self.pred = Some(joined);
        }
        // If the newcomer became the immediate successor it must be
        // linked, or the ring has a gap.
        if self.succ_list.first() == Some(&joined) && self.links.insert(joined) {
            self.sync_view();
        }
    }

    /// A neighbor learned that `departing` left; `successor`/`predecessor`
    /// are the departed node's, for table mending.
    fn repair_leave(
        &mut self,
        net: &Net<'_>,
        departing: NodeId,
        successor: NodeId,
        predecessor: NodeId,
    ) {
        self.log(net.now, || format!("leave notice {departing}"));
        let mut relink = false;
        if self.links.remove(&departing) {
            if successor != self.id {
                self.links.insert(successor);
            }
            relink = true;
        }
        if let Some(pos) = self.succ_list.iter().position(|&s| s == departing) {
            self.succ_list.remove(pos);
            if successor != self.id {
                self.insert_succ(successor);
            }
        }
        if self.pred == Some(departing) {
            self.pred = (predecessor != self.id).then_some(predecessor);
        }
        if relink {
            self.sync_view();
        }
    }

    /// Graceful departure: hand the shard to the predecessor (which
    /// becomes responsible for this node's key range under largest-id-≤-key
    /// responsibility), notify the neighborhood, and go dark.
    fn do_leave(&mut self, net: &Net<'_>) {
        self.dead = true;
        // Graceful departure keeps the cache coherent: every registered
        // cacher is invalidated before the shard moves to the heir.
        let registered: Vec<u64> = self.cache_registry.keys().copied().collect();
        for key in registered {
            self.invalidate_cachers(net, key);
        }
        let succ = self.succ_list.first().copied();
        if let Some(heir) = self.pred.or(succ) {
            let shard: Vec<(u64, u64)> = self.shard.entries();
            self.shard.clear();
            self.pinned.clear();
            self.send(
                net,
                heir,
                Payload::LeaveHandoff {
                    departing: self.id,
                    shard,
                },
            );
        }
        let successor = succ.unwrap_or(self.id);
        let predecessor = self.pred.unwrap_or(self.id);
        let targets: BTreeSet<NodeId> = self
            .links
            .iter()
            .chain(self.succ_list.iter())
            .copied()
            .chain(self.pred)
            .filter(|&n| n != self.id)
            .collect();
        self.log(net.now, || "leaving".to_owned());
        for t in targets {
            self.send(
                net,
                t,
                Payload::LeaveNotice {
                    departing: self.id,
                    successor,
                    predecessor,
                },
            );
        }
    }

    /// Inserts `n` into the successor list, keeping it sorted by clockwise
    /// distance from this node and capped at the configured length.
    fn insert_succ(&mut self, n: NodeId) {
        if n == self.id || self.succ_list.contains(&n) {
            return;
        }
        self.succ_list.push(n);
        let me = self.id;
        self.succ_list.sort_by_key(|&s| me.clockwise_to(s));
        self.succ_list.truncate(self.succ_len);
    }
}
