//! Per-node RPC bookkeeping: request ids, deadlines, bounded retry with
//! exponential backoff, and the in-flight table.
//!
//! Each node owns one [`RpcTable`]. Opening a request allocates a
//! node-scoped id and a deadline; the node arms a timer for the deadline
//! and sends the first transmission. When a response arrives the entry is
//! resolved (a second response for the same id is a *duplicate* and only
//! counted); when the timer fires first, [`RpcTable::retry`] either hands
//! back the operation for retransmission with a doubled deadline or — once
//! the retry budget is spent — gives up, which the node records as a
//! [`crate::msg::Outcome::TimedOut`] completion. Ids are never reused, so
//! a late response to a timed-out or already-answered request can always
//! be recognized as stale.

use crate::clock::Tick;
use crate::msg::Op;
use std::collections::BTreeMap;

/// Retry/deadline policy for one node's RPCs.
#[derive(Clone, Copy, Debug)]
pub struct RpcConfig {
    /// Base per-request deadline in ticks (doubles per retry).
    pub timeout: Tick,
    /// Retransmissions allowed after the first attempt.
    pub max_retries: u32,
}

impl Default for RpcConfig {
    fn default() -> RpcConfig {
        RpcConfig {
            timeout: 64,
            max_retries: 3,
        }
    }
}

/// One in-flight request.
#[derive(Clone, Debug)]
pub struct Pending {
    /// The operation, kept for retransmission.
    pub op: Op,
    /// When the request was opened.
    pub issued_at: Tick,
    /// Transmissions so far minus one (0 = first attempt in flight).
    pub attempt: u32,
}

/// What to do when a request's deadline timer fires.
#[derive(Clone, Debug)]
pub enum RetryDecision {
    /// Retransmit: attempt number and the new deadline to arm.
    Retry {
        /// The operation to resend.
        op: Op,
        /// The retransmission's 0-based attempt number.
        attempt: u32,
        /// The new deadline.
        deadline: Tick,
    },
    /// Retry budget exhausted: the request failed.
    GiveUp(Pending),
    /// The request already completed; the timer is stale.
    Stale,
}

/// A node's in-flight table.
#[derive(Clone, Debug, Default)]
pub struct RpcTable {
    next: u64,
    inflight: BTreeMap<u64, Pending>,
    config: RpcConfig,
}

impl RpcTable {
    /// An empty table under `config`.
    pub fn new(config: RpcConfig) -> RpcTable {
        RpcTable {
            next: 0,
            inflight: BTreeMap::new(),
            config,
        }
    }

    /// The table's policy.
    pub fn config(&self) -> RpcConfig {
        self.config
    }

    /// Opens a request: allocates an id and returns it with the first
    /// deadline to arm.
    pub fn open(&mut self, op: Op, now: Tick) -> (u64, Tick) {
        let req = self.next;
        self.next += 1;
        self.inflight.insert(
            req,
            Pending {
                op,
                issued_at: now,
                attempt: 0,
            },
        );
        (req, now + self.config.timeout)
    }

    /// Resolves `req` on response arrival. `None` means the id is unknown
    /// — a duplicate or stale response.
    pub fn resolve(&mut self, req: u64) -> Option<Pending> {
        self.inflight.remove(&req)
    }

    /// Handles a deadline timer for `req` firing at `now`.
    pub fn retry(&mut self, req: u64, now: Tick) -> RetryDecision {
        let Some(p) = self.inflight.get_mut(&req) else {
            return RetryDecision::Stale;
        };
        if p.attempt >= self.config.max_retries {
            // The entry was just seen under the same `&mut self`, so the
            // remove cannot miss; `Stale` is the non-panicking fallback.
            return match self.inflight.remove(&req) {
                Some(p) => RetryDecision::GiveUp(p),
                None => RetryDecision::Stale,
            };
        }
        p.attempt += 1;
        let attempt = p.attempt;
        let op = p.op.clone();
        let deadline = now + self.backoff(attempt);
        RetryDecision::Retry {
            op,
            attempt,
            deadline,
        }
    }

    /// The deadline length for the given attempt: `timeout · 2^attempt`,
    /// capped to avoid overflow.
    pub fn backoff(&self, attempt: u32) -> Tick {
        self.config.timeout.saturating_mul(1u64 << attempt.min(16))
    }

    /// Requests currently awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Whether `req` is still awaiting a response.
    pub fn is_inflight(&self, req: u64) -> bool {
        self.inflight.contains_key(&req)
    }

    /// The in-flight entries as `(req, pending)` pairs, in id order — the
    /// protocol model checker reads these for its RPC-id uniqueness and
    /// appendage (in-flight join) checks.
    pub fn inflight_entries(&self) -> Vec<(u64, Pending)> {
        self.inflight
            .iter()
            .map(|(&req, p)| (req, p.clone()))
            .collect()
    }

    /// Ids ever allocated by this table (the next id to hand out). Ids are
    /// monotone and never reused, so `open` count == this value.
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup(key: u64) -> Op {
        Op::Lookup { key }
    }

    #[test]
    fn open_allocates_fresh_ids_and_deadlines() {
        let mut t = RpcTable::new(RpcConfig {
            timeout: 10,
            max_retries: 2,
        });
        let (r0, d0) = t.open(lookup(1), 100);
        let (r1, d1) = t.open(lookup(2), 105);
        assert_ne!(r0, r1);
        assert_eq!(d0, 110);
        assert_eq!(d1, 115);
        assert_eq!(t.in_flight(), 2);
    }

    #[test]
    fn resolve_is_exactly_once() {
        let mut t = RpcTable::new(RpcConfig::default());
        let (req, _) = t.open(lookup(1), 0);
        assert!(t.resolve(req).is_some());
        assert!(t.resolve(req).is_none(), "second resolve is a duplicate");
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn retries_back_off_exponentially_then_give_up() {
        let mut t = RpcTable::new(RpcConfig {
            timeout: 8,
            max_retries: 2,
        });
        let (req, d0) = t.open(lookup(1), 0);
        assert_eq!(d0, 8);
        let RetryDecision::Retry {
            attempt, deadline, ..
        } = t.retry(req, d0)
        else {
            panic!("first timer should retry");
        };
        assert_eq!((attempt, deadline), (1, 8 + 16));
        let RetryDecision::Retry {
            attempt, deadline, ..
        } = t.retry(req, 24)
        else {
            panic!("second timer should retry");
        };
        assert_eq!((attempt, deadline), (2, 24 + 32));
        let RetryDecision::GiveUp(p) = t.retry(req, 56) else {
            panic!("third timer must give up");
        };
        assert_eq!(p.attempt, 2);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn timer_for_answered_request_is_stale() {
        let mut t = RpcTable::new(RpcConfig::default());
        let (req, d) = t.open(lookup(1), 0);
        t.resolve(req).expect("in flight");
        assert!(matches!(t.retry(req, d), RetryDecision::Stale));
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let t = RpcTable::new(RpcConfig {
            timeout: u64::MAX / 2,
            max_retries: 40,
        });
        assert!(t.backoff(63) >= t.backoff(16));
    }
}
