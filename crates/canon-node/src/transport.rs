//! Message delivery: the [`Transport`] trait, per-node mailboxes, and the
//! fault-injecting wrapper.
//!
//! Nodes never touch each other's state; the only way information moves is
//! an [`Envelope`] pushed into the destination's [`Mailboxes`] slot, with a
//! delivery tick quoted by a [`Transport`]:
//!
//! * [`ChannelTransport`] — the in-process channel: every message arrives,
//!   after a fixed latency of at least one tick. One tick of minimum
//!   latency is what makes round execution deterministic: a message sent
//!   while round *t* is executing can only be due at *t + 1* or later, so
//!   the set of messages each round processes does not depend on worker
//!   scheduling.
//! * [`FaultyTransport`] — wraps another transport and adds deterministic
//!   loss, latency jitter and network partitions, all derived from a
//!   [`Seed`] and the message coordinates `(from, to, seq)` — never from
//!   OS entropy, so a faulty run is exactly as reproducible as a clean
//!   one.
//!
//! Mailboxes are min-heaps ordered by `(deliver_at, from, seq)`. The key is
//! unique per message and independent of *arrival* order, so concurrent
//! senders cannot perturb the order a node drains its mailbox in — the
//! second half of the determinism argument. For a fixed ordered pair of
//! nodes the key is monotone in the send order whenever the transport's
//! latency is constant per pair, which is the FIFO property the channel
//! transport guarantees (see `tests/transport_fifo.rs`).

use crate::clock::Tick;
use canon_id::rng::Seed;
use canon_id::NodeId;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a runtime mutex under the crate's poisoned-lock policy: recover
/// the guard rather than panic.
///
/// Every mutex in this crate (mailbox slots, node states, partition sets)
/// guards data that is written by at most one worker per round, so a
/// poisoned lock means a node's handler panicked mid-round. The panic
/// itself already surfaces through `canon_par`'s join; propagating a
/// second panic from every subsequent accessor would only cascade aborts
/// and mask the original message. Recovering the guard keeps accounting
/// and shutdown paths (summaries, drains, audits) usable after a failed
/// round, and the determinism tests catch any torn state the recovery
/// exposes.
pub(crate) fn lock_unpoisoned<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A message queued for delivery.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// The sending node.
    pub from: NodeId,
    /// The destination node.
    pub to: NodeId,
    /// When the message was sent.
    pub sent_at: Tick,
    /// When the message becomes visible to the destination.
    pub deliver_at: Tick,
    /// Per-sender sequence number (unique per `from`).
    pub seq: u64,
    /// The protocol payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    fn key(&self) -> (Tick, u64, u64) {
        (self.deliver_at, self.from.raw(), self.seq)
    }
}

impl<M> PartialEq for Envelope<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<M> Eq for Envelope<M> {}

impl<M> PartialOrd for Envelope<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Envelope<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Decides the fate of each message: its delivery tick, or loss.
///
/// Implementations must be pure functions of `(now, from, to, seq)` and
/// their own construction-time configuration, so that runs are
/// reproducible. Under a virtual clock the quoted delivery tick must be
/// strictly after `now` (the channel transport enforces a minimum latency
/// of one tick); see the module docs for why.
pub trait Transport: Send + Sync {
    /// Returns the tick at which a message sent now from `from` to `to`
    /// arrives, or `None` if the network drops it.
    fn schedule(&self, now: Tick, from: NodeId, to: NodeId, seq: u64) -> Option<Tick>;

    /// The framing layer in this transport stack, if any. The default —
    /// no framing — moves payloads as in-process enum values; a
    /// [`FramedTransport`](crate::framed::FramedTransport) anywhere in the
    /// stack makes the runtime serialize every message through the wire
    /// codec into length-prefixed frames (see [`crate::framed`]). Wrappers
    /// that delegate `schedule` must forward this too, adjusting
    /// [`FramingView::per_frame`] if they inject faults *outside* the
    /// framing layer.
    fn framing(&self) -> Option<FramingView<'_>> {
        None
    }
}

/// A borrowed view of the framing layer inside a transport stack: the
/// frame ledger to account bytes against, and whether fault decisions are
/// taken per frame (a [`FaultyTransport`] wraps the framer) or per message
/// (the framer wraps the faults).
#[derive(Clone, Copy)]
pub struct FramingView<'a> {
    /// The framing layer's byte ledger and loss accounting.
    pub ledger: &'a crate::framed::FrameLedger,
    /// `true` when a fault-injecting wrapper sits *outside* the framing
    /// layer: the runtime then schedules one transport decision per frame,
    /// so a loss drops every coalesced message atomically. `false` means
    /// fates are decided per message (identically to an unframed run) and
    /// only surviving messages are coalesced.
    pub per_frame: bool,
}

/// The reliable in-process channel: fixed latency, no loss.
#[derive(Clone, Copy, Debug)]
pub struct ChannelTransport {
    latency: Tick,
}

impl ChannelTransport {
    /// A channel with the given fixed latency (clamped to at least one
    /// tick — zero-latency delivery would make round membership depend on
    /// worker scheduling).
    pub fn new(latency: Tick) -> ChannelTransport {
        ChannelTransport {
            latency: latency.max(1),
        }
    }

    /// The per-message latency in ticks.
    pub fn latency(&self) -> Tick {
        self.latency
    }
}

impl Transport for ChannelTransport {
    fn schedule(&self, now: Tick, _from: NodeId, _to: NodeId, _seq: u64) -> Option<Tick> {
        Some(now + self.latency)
    }
}

/// Deterministic fault injection on top of another transport: seeded loss,
/// seeded latency jitter, and explicit partitions.
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    seed: Seed,
    /// Messages dropped per thousand.
    loss_per_mille: u32,
    /// Maximum extra latency in ticks (uniform in `0..=jitter`).
    jitter: Tick,
    /// Directed `(from, to)` pairs the partition currently severs.
    blocked: Mutex<BTreeSet<(u64, u64)>>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`, dropping `loss_per_mille`/1000 of messages and adding
    /// up to `jitter` ticks of latency, both derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `loss_per_mille > 1000`.
    pub fn new(inner: T, seed: Seed, loss_per_mille: u32, jitter: Tick) -> FaultyTransport<T> {
        assert!(loss_per_mille <= 1000, "loss is a per-mille fraction");
        FaultyTransport {
            inner,
            seed,
            loss_per_mille,
            jitter,
            blocked: Mutex::new(BTreeSet::new()),
        }
    }

    /// Severs every link between the two groups, in both directions.
    /// Messages across the cut are silently dropped until [`heal`] is
    /// called.
    ///
    /// [`heal`]: FaultyTransport::heal
    pub fn partition(&self, a: &[NodeId], b: &[NodeId]) {
        let mut blocked = lock_unpoisoned(&self.blocked);
        for &x in a {
            for &y in b {
                blocked.insert((x.raw(), y.raw()));
                blocked.insert((y.raw(), x.raw()));
            }
        }
    }

    /// Removes every partition.
    pub fn heal(&self) {
        lock_unpoisoned(&self.blocked).clear();
    }

    /// The seeded per-message fate word: bits of
    /// `seed ⊕ f(from, to, seq)`.
    fn fate(&self, from: NodeId, to: NodeId, seq: u64) -> u64 {
        self.seed
            .derive("fault-transport")
            .derive_node(from)
            .derive_node(to)
            .derive_index(seq)
            .0
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn schedule(&self, now: Tick, from: NodeId, to: NodeId, seq: u64) -> Option<Tick> {
        if lock_unpoisoned(&self.blocked).contains(&(from.raw(), to.raw())) {
            return None;
        }
        let base = self.inner.schedule(now, from, to, seq)?;
        let fate = self.fate(from, to, seq);
        if (fate % 1000) < self.loss_per_mille as u64 {
            return None;
        }
        let extra = if self.jitter == 0 {
            0
        } else {
            (fate >> 10) % (self.jitter + 1)
        };
        Some(base + extra)
    }

    /// Faults injected outside a framing layer act on whole frames: one
    /// loss/jitter decision per frame, not per coalesced message.
    fn framing(&self) -> Option<FramingView<'_>> {
        self.inner.framing().map(|view| FramingView {
            per_frame: true,
            ..view
        })
    }
}

/// One bounded-order mailbox per node: a min-heap keyed by
/// `(deliver_at, from, seq)` behind a mutex.
#[derive(Debug, Default)]
pub struct Mailboxes<M> {
    slots: Vec<Mutex<BinaryHeap<Reverse<Envelope<M>>>>>,
}

impl<M> Mailboxes<M> {
    /// Mailboxes for `n` nodes.
    pub fn new(n: usize) -> Mailboxes<M> {
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            slots.push(Mutex::new(BinaryHeap::new()));
        }
        Mailboxes { slots }
    }

    /// Number of mailboxes.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no mailboxes.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Adds a mailbox for a newly spawned node, returning its slot.
    pub fn grow(&mut self) -> usize {
        self.slots.push(Mutex::new(BinaryHeap::new()));
        self.slots.len() - 1
    }

    /// Sends `env` to the node at `slot` through `transport`, which quotes
    /// the delivery tick from `(sent_at, from, to, seq)` — whatever
    /// `deliver_at` the caller filled in is overwritten (pass 0). Returns
    /// the delivery tick, or `None` if the transport dropped the message.
    pub fn send(
        &self,
        transport: &dyn Transport,
        slot: usize,
        mut env: Envelope<M>,
    ) -> Option<Tick> {
        let deliver_at = transport.schedule(env.sent_at, env.from, env.to, env.seq)?;
        env.deliver_at = deliver_at;
        lock_unpoisoned(&self.slots[slot]).push(Reverse(env));
        Some(deliver_at)
    }

    /// Pushes a pre-built envelope straight into `slot`, bypassing the
    /// transport — client command injection uses this, so injected work
    /// can never be lost to the network.
    pub fn push(&self, slot: usize, env: Envelope<M>) {
        lock_unpoisoned(&self.slots[slot]).push(Reverse(env));
    }

    /// Pops every message due at or before `now` from `slot`, in
    /// `(deliver_at, from, seq)` order.
    pub fn drain_due(&self, slot: usize, now: Tick) -> Vec<Envelope<M>> {
        let mut heap = lock_unpoisoned(&self.slots[slot]);
        let mut out = Vec::new();
        while let Some(Reverse(head)) = heap.peek() {
            if head.deliver_at > now {
                break;
            }
            let Some(Reverse(env)) = heap.pop() else {
                break;
            };
            out.push(env);
        }
        out
    }

    /// The earliest pending delivery tick in `slot`, if any.
    pub fn next_due(&self, slot: usize) -> Option<Tick> {
        lock_unpoisoned(&self.slots[slot])
            .peek()
            .map(|Reverse(env)| env.deliver_at)
    }

    /// Total queued messages across all mailboxes.
    pub fn queued(&self) -> usize {
        self.slots.iter().map(|s| lock_unpoisoned(s).len()).sum()
    }
}

impl<M: Clone> Mailboxes<M> {
    /// Snapshots every message queued at `slot`, in `(deliver_at, from,
    /// seq)` order, without disturbing the heap. The protocol model
    /// checker uses this to enumerate a state's pending deliveries.
    pub fn peek_all(&self, slot: usize) -> Vec<Envelope<M>> {
        let heap = lock_unpoisoned(&self.slots[slot]);
        let mut out: Vec<Envelope<M>> = heap.iter().map(|Reverse(env)| env.clone()).collect();
        out.sort();
        out
    }

    /// Removes and returns the unique message at `slot` with the given
    /// sender and sequence number, or `None` if no such message is queued.
    /// This is the model checker's single-step delivery primitive: it lets
    /// an explorer pop one chosen envelope out of `(deliver_at, from, seq)`
    /// order, modeling an adversarial network schedule.
    pub fn take(&self, slot: usize, from: NodeId, seq: u64) -> Option<Envelope<M>> {
        let mut heap = lock_unpoisoned(&self.slots[slot]);
        let mut rest: Vec<Reverse<Envelope<M>>> = Vec::with_capacity(heap.len());
        let mut found = None;
        for Reverse(env) in heap.drain() {
            if found.is_none() && env.from == from && env.seq == seq {
                found = Some(env);
            } else {
                rest.push(Reverse(env));
            }
        }
        heap.extend(rest);
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(raw: u64) -> NodeId {
        NodeId::new(raw)
    }

    /// Test shorthand: an envelope draft for [`Mailboxes::send`].
    fn env<M>(now: Tick, from: NodeId, to: NodeId, seq: u64, payload: M) -> Envelope<M> {
        Envelope {
            from,
            to,
            sent_at: now,
            deliver_at: 0,
            seq,
            payload,
        }
    }

    #[test]
    fn channel_transport_enforces_minimum_latency() {
        let t = ChannelTransport::new(0);
        assert_eq!(t.latency(), 1);
        assert_eq!(t.schedule(5, id(1), id(2), 0), Some(6));
    }

    #[test]
    fn mailbox_drains_in_key_order_regardless_of_arrival() {
        let boxes: Mailboxes<u32> = Mailboxes::new(1);
        let t = ChannelTransport::new(1);
        // Arrivals pushed out of order; drain must sort by (tick, from, seq).
        boxes.send(&t, 0, env(4, id(9), id(0), 0, 30));
        boxes.send(&t, 0, env(1, id(9), id(0), 0, 10));
        boxes.send(&t, 0, env(1, id(3), id(0), 7, 20));
        let due: Vec<u32> = boxes
            .drain_due(0, 10)
            .into_iter()
            .map(|e| e.payload)
            .collect();
        assert_eq!(due, vec![20, 10, 30]);
        assert_eq!(boxes.queued(), 0);
    }

    #[test]
    fn drain_due_leaves_future_messages() {
        let boxes: Mailboxes<u32> = Mailboxes::new(1);
        let t = ChannelTransport::new(5);
        boxes.send(&t, 0, env(0, id(1), id(0), 0, 1));
        assert!(boxes.drain_due(0, 4).is_empty());
        assert_eq!(boxes.next_due(0), Some(5));
        assert_eq!(boxes.drain_due(0, 5).len(), 1);
        assert_eq!(boxes.next_due(0), None);
    }

    #[test]
    fn faulty_transport_is_deterministic() {
        let mk = || FaultyTransport::new(ChannelTransport::new(2), Seed(7), 300, 9);
        let (a, b) = (mk(), mk());
        for seq in 0..200 {
            assert_eq!(
                a.schedule(10, id(1), id(2), seq),
                b.schedule(10, id(1), id(2), seq)
            );
        }
    }

    #[test]
    fn faulty_transport_loses_roughly_the_configured_fraction() {
        let t = FaultyTransport::new(ChannelTransport::new(1), Seed(11), 250, 0);
        let lost = (0..1000)
            .filter(|&seq| t.schedule(0, id(1), id(2), seq).is_none())
            .count();
        assert!((150..350).contains(&lost), "lost {lost} of 1000 at 25%");
    }

    #[test]
    fn partition_blocks_both_directions_until_healed() {
        let t = FaultyTransport::new(ChannelTransport::new(1), Seed(3), 0, 0);
        t.partition(&[id(1)], &[id(2)]);
        assert_eq!(t.schedule(0, id(1), id(2), 0), None);
        assert_eq!(t.schedule(0, id(2), id(1), 0), None);
        assert!(t.schedule(0, id(1), id(3), 0).is_some());
        t.heal();
        assert!(t.schedule(0, id(1), id(2), 0).is_some());
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let t = FaultyTransport::new(ChannelTransport::new(1), Seed(5), 0, 4);
        for seq in 0..200 {
            let d = t.schedule(0, id(1), id(2), seq).expect("no loss");
            assert!((1..=5).contains(&d), "delivery {d} outside 1..=5");
        }
    }

    #[test]
    fn grow_adds_an_empty_mailbox() {
        let mut boxes: Mailboxes<u32> = Mailboxes::new(2);
        assert_eq!(boxes.grow(), 2);
        assert_eq!(boxes.len(), 3);
        assert!(!boxes.is_empty());
        assert_eq!(boxes.next_due(2), None);
    }
}
