//! [`RemoteShard`]: the DHT itself as a storage backend.
//!
//! canon-store's [`StorageBackend`] abstracts "a place bytes live"; this
//! module closes the loop by implementing it **over the live cluster's
//! RPCs**. A `RemoteShard` owns a [`Runtime`] and an origin node: `put`
//! injects a PUT at the origin and drives the cluster until the write is
//! acknowledged (primary + policy replicas), `get` injects a GET and
//! verifies the returned value against the content id recorded at write
//! time — so a node (or a client process) can serve keys it does not hold
//! locally, with the same integrity guarantee as a local backend.
//!
//! Values are the runtime's wire currency (`u64`, 8 little-endian bytes);
//! wider blobs are rejected with [`BackendError::Unsupported`], as is
//! `delete` (the wire protocol has no delete verb — retired keys simply
//! age out with their holders).

use crate::msg::{Command, Op, Outcome};
use crate::runtime::Runtime;
use canon_id::NodeId;
use canon_store::{BackendError, ContentId, StorageBackend, Stored, Usage};
use std::collections::BTreeMap;

/// A [`StorageBackend`] that round-trips every operation through a live
/// cluster's RPC table from a fixed origin node.
#[derive(Debug)]
pub struct RemoteShard {
    runtime: Runtime,
    origin: NodeId,
    /// Content ids of acknowledged writes, for client-side integrity
    /// verification and scan/usage accounting.
    seen: BTreeMap<u64, ContentId>,
}

impl RemoteShard {
    /// Wraps `runtime` as a storage backend driven from `origin`.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is not hosted by the runtime.
    pub fn new(runtime: Runtime, origin: NodeId) -> RemoteShard {
        assert!(
            runtime.ids().contains(&origin),
            "origin {origin} is not hosted"
        );
        RemoteShard {
            runtime,
            origin,
            seen: BTreeMap::new(),
        }
    }

    /// The wrapped cluster.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Releases the wrapped cluster.
    pub fn into_runtime(self) -> Runtime {
        self.runtime
    }

    /// Injects `op` at the origin, drives the cluster to idle, and returns
    /// the op's completion.
    fn round_trip(&mut self, op: Op) -> Result<(Outcome, Option<u64>), BackendError> {
        let kind = op.kind();
        let key = op.key_point().raw();
        self.runtime.inject(self.origin, Command::Issue(op));
        self.runtime.run_until_idle();
        let done = self
            .runtime
            .completions()
            .into_iter()
            .rfind(|c| c.origin == self.origin && c.kind == kind && c.key == key)
            .ok_or_else(|| BackendError::Io(format!("no completion for {kind:?} {key:#x}")))?;
        Ok((done.outcome, done.value))
    }
}

impl StorageBackend for RemoteShard {
    fn put(&mut self, key: u64, bytes: &[u8]) -> Result<ContentId, BackendError> {
        let value: [u8; 8] = bytes
            .try_into()
            .map_err(|_| BackendError::Unsupported("remote values are u64 (8 bytes)"))?;
        let value = u64::from_le_bytes(value);
        let (outcome, _) = self.round_trip(Op::Put { key, value })?;
        if outcome != Outcome::Ok {
            return Err(BackendError::Io(format!(
                "remote put of {key:#x} ended {outcome:?}"
            )));
        }
        let id = ContentId::of(bytes);
        self.seen.insert(key, id);
        Ok(id)
    }

    fn get(&mut self, key: u64) -> Result<Option<Stored>, BackendError> {
        let (outcome, value) = self.round_trip(Op::Get { key })?;
        if outcome == Outcome::TimedOut {
            return Err(BackendError::Io(format!(
                "remote get of {key:#x} timed out"
            )));
        }
        let Some(value) = value else {
            return Ok(None);
        };
        let bytes = value.to_le_bytes().to_vec();
        let actual = ContentId::of(&bytes);
        if let Some(&expected) = self.seen.get(&key) {
            if expected != actual {
                return Err(BackendError::Corrupt {
                    key,
                    expected,
                    actual,
                });
            }
        } else {
            // A key written by someone else: adopt its id on first read.
            self.seen.insert(key, actual);
        }
        Ok(Some(Stored { id: actual, bytes }))
    }

    fn delete(&mut self, _key: u64) -> Result<bool, BackendError> {
        Err(BackendError::Unsupported("the wire protocol has no delete"))
    }

    fn scan(&self) -> Vec<(u64, ContentId)> {
        self.seen.iter().map(|(&k, &id)| (k, id)).collect()
    }

    fn usage(&self) -> Usage {
        let distinct: std::collections::BTreeSet<ContentId> = self.seen.values().copied().collect();
        Usage {
            keys: self.seen.len(),
            blobs: distinct.len(),
            logical_bytes: 8 * self.seen.len() as u64,
            unique_bytes: 8 * distinct.len() as u64,
        }
    }

    fn flush(&mut self) -> Result<(), BackendError> {
        Ok(()) // every acknowledged write is already replicated
    }
}
