//! Cluster construction: seed a [`Runtime`] from a pre-built overlay
//! graph.
//!
//! The runtime itself is graph-agnostic — any [`OverlayGraph`] works. For
//! a Crescendo cluster, build the graph with `canon::crescendo` and hand
//! it here; each node's link table is the graph's adjacency for it, and
//! its successor list and predecessor come from the global ring over the
//! graph's identifiers (the same ring `canon-store`'s replication policy
//! places replicas on, which is what makes the replica-placement
//! equivalence test possible).

use crate::clock::Clock;
use crate::runtime::{Runtime, RuntimeConfig};
use crate::transport::Transport;
use canon_id::NodeId;
use canon_overlay::OverlayGraph;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Builds a runtime hosting every node of `graph`: links from the graph's
/// adjacency, successor lists and predecessors from the global ring over
/// the graph's identifiers. Node slots follow graph index order.
pub fn from_graph(
    graph: &OverlayGraph,
    clock: Arc<dyn Clock>,
    transport: Arc<dyn Transport>,
    config: RuntimeConfig,
) -> Runtime {
    let mut rt = Runtime::new(clock, transport, config);
    let ring = graph.ring();
    for idx in graph.node_indices() {
        let id = graph.id(idx);
        let links: BTreeSet<NodeId> = graph.neighbors(idx).iter().map(|&n| graph.id(n)).collect();
        let mut succ_list = Vec::with_capacity(config.succ_list_len);
        let mut cur = id;
        for _ in 0..config.succ_list_len {
            let Some(next) = ring.strict_successor(cur) else {
                break;
            };
            if next == id {
                break;
            }
            succ_list.push(next);
            cur = next;
        }
        let pred = ring.strict_predecessor(id).filter(|&p| p != id);
        rt.spawn_seeded(id, links, succ_list, pred);
    }
    rt
}
