//! Framed transport: every message crosses the wire codec, batched into
//! length-prefixed frames with per-link byte accounting.
//!
//! # Where framing hooks in
//!
//! [`Transport`] is deliberately only a *scheduler* — payloads never pass
//! through it, they move as in-process enum values straight into the
//! destination mailbox. Framing therefore lives in the runtime's send
//! path: with a [`FramedTransport`] in the stack, a node's sends are
//! staged in its outbox instead of entering mailboxes directly, and at the
//! end of the node's round the runtime flushes the outbox — coalescing
//! same-destination messages into frames, encoding each frame through
//! [`canon_wire`], accounting its bytes, then **decoding the frame and
//! delivering the decoded envelopes**. Every delivered message has round-
//! tripped through the codec, so a framed run exercises encode *and*
//! decode end to end; the equivalence tests pin that its event log is
//! byte-identical to an unframed run.
//!
//! # Frame layout
//!
//! ```text
//! u32-LE body length
//! from (8B)  to (8B)  sent_at (varint)  deliver_at (varint)  count (varint)
//! count × [ seq (varint)  payload (length-prefixed wire bytes) ]
//! ```
//!
//! The header is hoisted: messages in one frame share `from`, `to`,
//! `sent_at` and `deliver_at`, so batching saves one header per coalesced
//! message. The ledger tracks the counterfactual unbatched size, which is
//! where the reported batching savings come from.
//!
//! # Fault granularity is wrapper order
//!
//! * `FramedTransport::new(FaultyTransport::new(..))` — faults *inside*
//!   the framer: loss and jitter are decided per message at send time with
//!   the message's own sequence number, exactly as an unframed run would,
//!   and only survivors are coalesced (by shared delivery tick). This is
//!   the equivalence configuration: summaries and event logs match the
//!   unframed faulty run byte for byte.
//! * `FaultyTransport::new(FramedTransport::new(..))` — faults *outside*
//!   the framer: the runtime schedules **one** transport decision per
//!   frame (keyed by the frame's first sequence number), so a loss drops
//!   every message in the frame atomically and jitter moves the frame as a
//!   unit — what a real packet network does to a batch.

use crate::clock::Tick;
use crate::msg::Payload;
use crate::node::NodeState;
use crate::transport::{lock_unpoisoned, Envelope, FramingView, Mailboxes, Transport};
use canon_id::NodeId;
use canon_wire::{varint_len, Decoder, Encoder, WireDecode, WireError};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Per-link byte counters: frames and messages delivered over a directed
/// `(from, to)` link, and the frame bytes that carried them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkBytes {
    /// Frames delivered.
    pub frames: u64,
    /// Messages the frames carried.
    pub msgs: u64,
    /// Encoded frame bytes (length prefix and header included).
    pub bytes: u64,
}

/// One frame-level event streamed to a [`FrameObserver`].
#[derive(Clone, Copy, Debug)]
pub struct FrameEvent {
    /// The sending node.
    pub from: NodeId,
    /// The destination node.
    pub to: NodeId,
    /// The frame's delivery tick, or `None` if the transport dropped it.
    pub deliver_at: Option<Tick>,
    /// Messages coalesced into the frame.
    pub msgs: u64,
    /// Encoded frame bytes (zero for dropped frames, which are never
    /// encoded).
    pub bytes: u64,
}

/// An observer sink for frame-level events, mirroring the runtime's other
/// observer sinks. Events arrive in worker-completion order, which is not
/// deterministic across thread counts — order-independent aggregation
/// (counters, keyed maps) is; the built-in [`FrameLedger`] is exactly
/// that.
pub trait FrameObserver: Send {
    /// Called once per frame, delivered or dropped.
    fn on_frame(&mut self, event: &FrameEvent);
}

/// Order-independent aggregation state behind the ledger's mutex.
#[derive(Debug, Default)]
struct Tally {
    links: BTreeMap<(u64, u64), LinkBytes>,
    /// Payload-kind label → (messages, payload bytes).
    kinds: BTreeMap<&'static str, (u64, u64)>,
    total: LinkBytes,
    header_bytes: u64,
    payload_bytes: u64,
    unbatched_bytes: u64,
    frames_lost: u64,
    msgs_lost: u64,
    decode_errors: u64,
}

/// The framing layer's byte ledger: per-link and per-payload-kind
/// counters, batching counterfactuals, and loss accounting. All updates
/// are commutative, so the ledger reads identically regardless of worker
/// scheduling — the framed determinism tests rely on that.
#[derive(Default)]
pub struct FrameLedger {
    tally: Mutex<Tally>,
    observer: Mutex<Option<Box<dyn FrameObserver>>>,
}

impl std::fmt::Debug for FrameLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameLedger")
            .field("tally", &lock_unpoisoned(&self.tally))
            .finish_non_exhaustive()
    }
}

impl FrameLedger {
    fn record_frame(&self, envs: &[Envelope<Payload>], frame: &FrameBytes) {
        let Some(first) = envs.first() else { return };
        let link_bytes = frame.bytes.len() as u64;
        let payload_bytes: u64 = frame.per_msg.iter().map(|&(_, len)| len as u64).sum();
        {
            let mut t = lock_unpoisoned(&self.tally);
            let link = t
                .links
                .entry((first.from.raw(), first.to.raw()))
                .or_default();
            link.frames += 1;
            link.msgs += envs.len() as u64;
            link.bytes += link_bytes;
            t.total.frames += 1;
            t.total.msgs += envs.len() as u64;
            t.total.bytes += link_bytes;
            t.header_bytes += link_bytes - payload_bytes;
            t.payload_bytes += payload_bytes;
            t.unbatched_bytes += frame.unbatched as u64;
            for &(kind, len) in &frame.per_msg {
                let k = t.kinds.entry(kind).or_default();
                k.0 += 1;
                k.1 += len as u64;
            }
        }
        self.observe(FrameEvent {
            from: first.from,
            to: first.to,
            deliver_at: Some(first.deliver_at),
            msgs: envs.len() as u64,
            bytes: link_bytes,
        });
    }

    fn record_lost(&self, from: NodeId, to: NodeId, msgs: usize) {
        {
            let mut t = lock_unpoisoned(&self.tally);
            t.frames_lost += 1;
            t.msgs_lost += msgs as u64;
        }
        self.observe(FrameEvent {
            from,
            to,
            deliver_at: None,
            msgs: msgs as u64,
            bytes: 0,
        });
    }

    fn record_decode_error(&self) {
        lock_unpoisoned(&self.tally).decode_errors += 1;
    }

    fn observe(&self, event: FrameEvent) {
        if let Some(obs) = lock_unpoisoned(&self.observer).as_mut() {
            obs.on_frame(&event);
        }
    }

    /// Installs an observer sink for frame events (replacing any previous
    /// one).
    pub fn set_observer(&self, observer: Box<dyn FrameObserver>) {
        *lock_unpoisoned(&self.observer) = Some(observer);
    }

    /// Snapshot of the aggregated wire accounting.
    pub fn summary(&self) -> WireSummary {
        let t = lock_unpoisoned(&self.tally);
        WireSummary {
            frames: t.total.frames,
            msgs: t.total.msgs,
            bytes: t.total.bytes,
            header_bytes: t.header_bytes,
            payload_bytes: t.payload_bytes,
            unbatched_bytes: t.unbatched_bytes,
            frames_lost: t.frames_lost,
            msgs_lost: t.msgs_lost,
            decode_errors: t.decode_errors,
            links: t.links.len() as u64,
            per_kind: t
                .kinds
                .iter()
                .map(|(&k, &(msgs, bytes))| (k.to_owned(), msgs, bytes))
                .collect(),
        }
    }

    /// Per-link counters, keyed by directed `(from, to)` node pairs.
    pub fn link_bytes(&self) -> BTreeMap<(NodeId, NodeId), LinkBytes> {
        lock_unpoisoned(&self.tally)
            .links
            .iter()
            .map(|(&(f, t), &v)| ((NodeId::new(f), NodeId::new(t)), v))
            .collect()
    }
}

/// Aggregated wire accounting for a framed run, read through
/// [`Runtime::wire_summary`](crate::runtime::Runtime::wire_summary).
///
/// Kept separate from the runtime [`Summary`](crate::runtime::Summary)
/// struct on purpose: the acceptance bar for framing is that `Summary`
/// stays *byte-identical* between framed and unframed runs, so wire
/// counters — which are zero by definition without framing — live beside
/// it, not inside it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireSummary {
    /// Frames delivered.
    pub frames: u64,
    /// Messages the delivered frames carried.
    pub msgs: u64,
    /// Total encoded frame bytes delivered.
    pub bytes: u64,
    /// Bytes spent on frame headers and length prefixes.
    pub header_bytes: u64,
    /// Bytes spent on message payloads.
    pub payload_bytes: u64,
    /// What `bytes` would have been with one frame per message — the
    /// batching counterfactual.
    pub unbatched_bytes: u64,
    /// Frames the transport dropped (per-frame fault mode only).
    pub frames_lost: u64,
    /// Messages lost inside dropped frames.
    pub msgs_lost: u64,
    /// Frames that failed the decode-validate round trip (a codec bug;
    /// always zero in the shipped codec — the equivalence tests assert
    /// it).
    pub decode_errors: u64,
    /// Distinct directed links that carried at least one frame.
    pub links: u64,
    /// Per-payload-kind accounting as `(kind, messages, payload bytes)`,
    /// sorted by kind label.
    pub per_kind: Vec<(String, u64, u64)>,
}

impl WireSummary {
    /// Mean encoded frame bytes per delivered message.
    pub fn bytes_per_msg(&self) -> f64 {
        if self.msgs == 0 {
            0.0
        } else {
            self.bytes as f64 / self.msgs as f64
        }
    }

    /// Mean messages per frame (1.0 means batching never coalesced).
    pub fn msgs_per_frame(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.msgs as f64 / self.frames as f64
        }
    }

    /// Fraction of wire bytes saved by batching, against one frame per
    /// message.
    pub fn batching_savings(&self) -> f64 {
        if self.unbatched_bytes == 0 {
            0.0
        } else {
            1.0 - self.bytes as f64 / self.unbatched_bytes as f64
        }
    }
}

/// A transport-stack layer that makes the runtime serialize every message
/// into length-prefixed frames (see the module docs for the layout and
/// for how wrapper order selects the fault granularity). Scheduling
/// delegates to the wrapped transport unchanged.
#[derive(Debug, Default)]
pub struct FramedTransport<T> {
    inner: T,
    ledger: FrameLedger,
}

impl<T: Transport> FramedTransport<T> {
    /// Frames every message crossing `inner`.
    pub fn new(inner: T) -> FramedTransport<T> {
        FramedTransport {
            inner,
            ledger: FrameLedger::default(),
        }
    }

    /// The byte ledger this layer accounts frames against.
    pub fn ledger(&self) -> &FrameLedger {
        &self.ledger
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for FramedTransport<T> {
    fn schedule(&self, now: Tick, from: NodeId, to: NodeId, seq: u64) -> Option<Tick> {
        self.inner.schedule(now, from, to, seq)
    }

    fn framing(&self) -> Option<FramingView<'_>> {
        Some(FramingView {
            ledger: &self.ledger,
            per_frame: false,
        })
    }
}

/// An encoded frame plus the accounting facts gathered while encoding.
pub(crate) struct FrameBytes {
    /// The full frame: length prefix, header, messages.
    pub bytes: Vec<u8>,
    /// Per-message `(payload kind, encoded payload length)`.
    pub per_msg: Vec<(&'static str, usize)>,
    /// Total bytes had each message shipped as its own frame.
    pub unbatched: usize,
}

/// Fixed frame-header bytes besides the varints: the `u32` length prefix
/// plus the two 8-byte node identifiers.
const FRAME_FIXED_HEADER: usize = 4 + 8 + 8;

/// Encodes one frame. Every envelope must share `from`, `to`, `sent_at`
/// and `deliver_at` (the caller groups by exactly those); the shared
/// values are read from the first envelope.
pub(crate) fn encode_frame(envs: &[Envelope<Payload>]) -> FrameBytes {
    let mut body = Vec::new();
    let mut per_msg = Vec::with_capacity(envs.len());
    let mut unbatched = 0usize;
    let mut e = Encoder::new(&mut body);
    if let Some(first) = envs.first() {
        e.encode(&first.from);
        e.encode(&first.to);
        e.varint(first.sent_at);
        e.varint(first.deliver_at);
        e.varint(envs.len() as u64);
        for env in envs {
            e.varint(env.seq);
            let before = e.written();
            // Length-prefixed so a decoder can skip payloads it cannot
            // parse and so the payload length is an accounting fact.
            let mut payload = Vec::new();
            Encoder::new(&mut payload).encode(&env.payload);
            e.bytes(&payload);
            let written = e.written() - before;
            per_msg.push((env.payload.kind_name(), payload.len()));
            // The same message as a singleton frame: fixed header, its own
            // copies of the shared varints, count = 1, then the message.
            unbatched += FRAME_FIXED_HEADER
                + varint_len(first.sent_at)
                + varint_len(first.deliver_at)
                + 1
                + written;
        }
    }
    let mut bytes = Vec::with_capacity(4 + body.len());
    bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&body);
    FrameBytes {
        bytes,
        per_msg,
        unbatched,
    }
}

/// Decodes a frame back into envelopes. Total: truncation, bad tags,
/// length-prefix mismatches and trailing bytes all surface as
/// [`WireError`], never a panic.
pub(crate) fn decode_frame(bytes: &[u8]) -> Result<Vec<Envelope<Payload>>, WireError> {
    let (prefix, body) = bytes.split_at_checked(4).ok_or(WireError::Truncated)?;
    let mut len = [0u8; 4];
    len.copy_from_slice(prefix);
    let len = u32::from_le_bytes(len) as usize;
    if body.len() < len {
        return Err(WireError::Truncated);
    }
    if body.len() > len {
        return Err(WireError::TrailingBytes);
    }
    let mut d = Decoder::new(body);
    let from = NodeId::decode(&mut d)?;
    let to = NodeId::decode(&mut d)?;
    let sent_at = d.varint()?;
    let deliver_at = d.varint()?;
    let count = d.varint()?;
    let count = usize::try_from(count).map_err(|_| WireError::Truncated)?;
    // Each message takes at least two bytes (seq + length prefix), so an
    // over-claimed count is truncation, caught before allocating.
    if count > d.remaining() {
        return Err(WireError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let seq = d.varint()?;
        let payload_bytes = d.bytes()?;
        let payload: Payload = canon_wire::from_bytes(payload_bytes)?;
        out.push(Envelope {
            from,
            to,
            sent_at,
            deliver_at,
            seq,
            payload,
        });
    }
    d.finish()?;
    Ok(out)
}

/// Flushes a node's staged outbox at the end of its round: groups staged
/// messages into frames, runs each frame through encode → account →
/// decode, and delivers the decoded envelopes into the destination
/// mailboxes. See the module docs for the two fault granularities.
pub(crate) fn flush_outbox(
    boxes: &Mailboxes<Payload>,
    transport: &dyn Transport,
    view: FramingView<'_>,
    state: &mut NodeState,
    now: Tick,
) {
    if state.outbox.is_empty() {
        return;
    }
    let staged = std::mem::take(&mut state.outbox);
    if view.per_frame {
        // Fates are per frame: coalesce everything to one destination this
        // round, then ask the transport once, keyed by the frame's first
        // (lowest) sequence number.
        let mut groups: BTreeMap<usize, Vec<Envelope<Payload>>> = BTreeMap::new();
        for (slot, env) in staged {
            groups.entry(slot).or_default().push(env);
        }
        for (slot, mut envs) in groups {
            let Some(first) = envs.first() else { continue };
            let (from, to, frame_seq) = (first.from, first.to, first.seq);
            match transport.schedule(now, from, to, frame_seq) {
                None => {
                    // The whole frame is lost atomically.
                    state.stats.network_drops += envs.len() as u64;
                    view.ledger.record_lost(from, to, envs.len());
                }
                Some(deliver_at) => {
                    for env in &mut envs {
                        env.deliver_at = deliver_at;
                    }
                    deliver_frame(boxes, view.ledger, slot, &envs);
                }
            }
        }
    } else {
        // Fates were already decided per message at send time (so loss and
        // jitter match an unframed run exactly); coalesce the survivors
        // that share a delivery tick.
        let mut groups: BTreeMap<(usize, Tick), Vec<Envelope<Payload>>> = BTreeMap::new();
        for (slot, env) in staged {
            groups.entry((slot, env.deliver_at)).or_default().push(env);
        }
        for ((slot, _), envs) in groups {
            deliver_frame(boxes, view.ledger, slot, &envs);
        }
    }
}

/// Encode → account → decode-validate → deliver one frame.
fn deliver_frame(
    boxes: &Mailboxes<Payload>,
    ledger: &FrameLedger,
    slot: usize,
    envs: &[Envelope<Payload>],
) {
    let frame = encode_frame(envs);
    match decode_frame(&frame.bytes) {
        Ok(decoded) => {
            ledger.record_frame(envs, &frame);
            // Deliver the *decoded* envelopes: every message a framed run
            // processes has round-tripped through the codec.
            for env in decoded {
                boxes.push(slot, env);
            }
        }
        Err(_) => {
            // Unreachable for bytes this module just encoded; surfaced as
            // a counter (the equivalence tests assert it stays zero)
            // rather than a panic, per the crate's no-panic policy.
            ledger.record_decode_error();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{Command, Op};
    use crate::transport::ChannelTransport;

    fn env(seq: u64, payload: Payload) -> Envelope<Payload> {
        Envelope {
            from: NodeId::new(10),
            to: NodeId::new(20),
            sent_at: 5,
            deliver_at: 6,
            seq,
            payload,
        }
    }

    #[test]
    fn frames_roundtrip_and_batching_beats_singletons() {
        let envs = vec![
            env(1, Payload::Replicate { key: 7, value: 8 }),
            env(
                2,
                Payload::RepairJoin {
                    joined: NodeId::new(3),
                },
            ),
            env(3, Payload::Client(Command::Issue(Op::Lookup { key: 4 }))),
        ];
        let frame = encode_frame(&envs);
        let decoded = decode_frame(&frame.bytes).expect("decode");
        assert_eq!(decoded.len(), 3);
        for (d, e) in decoded.iter().zip(&envs) {
            assert_eq!(d.payload, e.payload);
            assert_eq!(
                (d.from, d.to, d.sent_at, d.deliver_at, d.seq),
                (e.from, e.to, e.sent_at, e.deliver_at, e.seq)
            );
        }
        // Three coalesced messages share one header: strictly smaller than
        // three singleton frames.
        assert!(frame.bytes.len() < frame.unbatched);
        // Re-encoding the decoded envelopes is byte-identical.
        assert_eq!(encode_frame(&decoded).bytes, frame.bytes);
    }

    #[test]
    fn frame_decode_is_total() {
        let frame = encode_frame(&[env(1, Payload::Replicate { key: 1, value: 2 })]);
        for cut in 0..frame.bytes.len() {
            assert!(
                decode_frame(&frame.bytes[..cut]).is_err(),
                "prefix {cut} decoded"
            );
        }
        let mut extended = frame.bytes;
        extended.push(0);
        assert!(decode_frame(&extended).is_err());
        // Over-claimed message count with an honest length prefix.
        let mut body = Vec::new();
        let mut e = Encoder::new(&mut body);
        e.encode(&NodeId::new(1));
        e.encode(&NodeId::new(2));
        e.varint(0);
        e.varint(1);
        e.varint(1 << 40); // count
        let mut bytes = (body.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&body);
        assert_eq!(decode_frame(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn ledger_aggregates_links_kinds_and_losses() {
        let ledger = FrameLedger::default();
        let envs = vec![
            env(1, Payload::Replicate { key: 1, value: 2 }),
            env(2, Payload::Replicate { key: 3, value: 4 }),
        ];
        let frame = encode_frame(&envs);
        ledger.record_frame(&envs, &frame);
        ledger.record_lost(NodeId::new(10), NodeId::new(30), 3);
        let s = ledger.summary();
        assert_eq!((s.frames, s.msgs), (1, 2));
        assert_eq!(s.bytes, frame.bytes.len() as u64);
        assert_eq!(s.header_bytes + s.payload_bytes, s.bytes);
        assert_eq!((s.frames_lost, s.msgs_lost), (1, 3));
        assert_eq!(s.decode_errors, 0);
        assert_eq!(s.links, 1);
        assert_eq!(
            s.per_kind,
            vec![("replicate".to_owned(), 2, s.payload_bytes)]
        );
        assert!(s.msgs_per_frame() > 1.9);
        assert!(s.batching_savings() > 0.0);
        let links = ledger.link_bytes();
        assert_eq!(
            links.get(&(NodeId::new(10), NodeId::new(20))),
            Some(&LinkBytes {
                frames: 1,
                msgs: 2,
                bytes: frame.bytes.len() as u64
            })
        );
    }

    #[test]
    fn wrapper_order_selects_fault_granularity() {
        use crate::transport::FaultyTransport;
        use canon_id::rng::Seed;
        let framed_inside = FramedTransport::new(ChannelTransport::new(1));
        let view = framed_inside.framing().expect("framing");
        assert!(!view.per_frame);

        let faulty_outside = FaultyTransport::new(
            FramedTransport::new(ChannelTransport::new(1)),
            Seed(1),
            100,
            0,
        );
        let view = faulty_outside.framing().expect("framing");
        assert!(view.per_frame);

        let faulty_inside = FramedTransport::new(FaultyTransport::new(
            ChannelTransport::new(1),
            Seed(1),
            100,
            0,
        ));
        let view = faulty_inside.framing().expect("framing");
        assert!(!view.per_frame);

        assert!(ChannelTransport::new(1).framing().is_none());
    }
}
