//! canon-node: a concurrent node runtime that serves live DHT traffic.
//!
//! Everything else in this workspace evaluates Canonical Crescendo
//! *statically* — build a graph, route over it, measure. This crate runs
//! the protocol: every node is an actor with its own mailbox, link table
//! and store shard, executing concurrently over `canon-par` worker threads
//! and communicating **only** through a [`transport::Transport`]. On top
//! of the actor substrate sit a small RPC layer and three protocols:
//!
//! * recursive key lookup, forwarded hop by hop through the same
//!   [`canon_overlay::RoutingPolicy`] engine the simulators use — each
//!   node routes from its own partial view;
//! * replicated GET/PUT placed by `canon-store`'s shared
//!   [`canon_store::Policy`] engine, with per-key replication status and
//!   pin/unpin in the RPC table, over pluggable content-addressed
//!   [`shard`] backends;
//! * the join/leave repair protocol of `canon-sim`, as actual messages.
//!
//! The runtime is **deterministic by construction**: time is a capability
//! ([`clock::Clock`]), delivery order is a pure function of send
//! coordinates, and rounds execute in lock-step — so a run under the
//! [`clock::VirtualClock`] is byte-identical across worker-thread counts,
//! while the same binary code serves real throughput benchmarks under a
//! monotonic clock in `canon-bench`. See [`runtime`] for the full
//! argument.
//!
//! Module map:
//!
//! * [`cache`] — the en-route read cache on the GET path: level-annotated
//!   entries filled along converged routes, owner-driven invalidation,
//!   observer-sink accounting;
//! * [`clock`] — the [`clock::Clock`] trait and the virtual lock-step
//!   clock;
//! * [`transport`] — envelopes, mailboxes, the in-process channel
//!   transport and the deterministic fault-injecting wrapper;
//! * [`msg`] — the wire vocabulary and completion records;
//! * [`wire`] — canon-wire codec impls pinning the binary layout of the
//!   wire vocabulary, plus size-bound sample generators;
//! * [`framed`] — the framing layer: length-prefixed frames, batching,
//!   per-link byte accounting, frame-granular fault semantics;
//! * [`rpc`] — request ids, deadlines, bounded retry with exponential
//!   backoff, the in-flight table;
//! * [`node`] — per-node actor state and the protocol state machine;
//! * [`shard`] — the node's store shard over a pluggable canon-store
//!   backend;
//! * [`runtime`] — round-based lock-step execution and cluster-wide
//!   accounting;
//! * [`cluster`] — seeding a runtime from a pre-built overlay graph;
//! * [`remote`] — a [`canon_store::StorageBackend`] that round-trips
//!   through the cluster's RPCs, so the DHT itself can serve as a shard;
//! * `model` (feature `model`) — single-step delivery, state fingerprints
//!   and fault hooks for canon-audit's protocol model checker.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod clock;
pub mod cluster;
pub mod framed;
#[cfg(feature = "model")]
pub mod model;
pub mod msg;
pub mod node;
pub mod remote;
pub mod rpc;
pub mod runtime;
pub mod shard;
pub mod transport;
pub mod wire;

pub use cache::{CacheConfig, CacheEvent, CacheObserver, CacheSummary, CacheTally, NodeCache};
pub use clock::{Clock, Tick, VirtualClock};
pub use cluster::from_graph;
pub use framed::{FrameEvent, FrameLedger, FrameObserver, FramedTransport, LinkBytes, WireSummary};
pub use msg::{Command, Completion, JoinGrant, Op, OpKind, Outcome, Payload, RpcResult};
pub use node::{LatencySink, NodeStats};
pub use remote::RemoteShard;
pub use rpc::{RetryDecision, RpcConfig, RpcTable};
pub use runtime::{ReplicationStatus, Runtime, RuntimeConfig, Summary};
pub use shard::{Shard, ShardBackend};
pub use transport::{
    ChannelTransport, Envelope, FaultyTransport, FramingView, Mailboxes, Transport,
};
