//! Time as a capability: the [`Clock`] trait and the virtual lock-step
//! clock.
//!
//! Nothing in `canon-node` reads wall-clock time directly — the
//! `wall-clock` audit lint enforces this for the whole crate, *including*
//! its tests (see `canon-audit`'s `CLOCK_TRAIT_CRATES`). Every time read
//! goes through a [`Clock`], of which two implementations exist:
//!
//! * [`VirtualClock`] (here): a lock-step counter that only moves when the
//!   runtime explicitly advances it to the next scheduled event. Under it a
//!   whole cluster run is a pure function of its seeds — byte-identical
//!   across worker-thread counts — which is what the determinism tests
//!   rely on;
//! * `MonotonicClock` (in `canon-bench`, the one crate with a wall-clock
//!   allowance): maps a monotonic OS clock onto ticks so the load harness
//!   can drive the same runtime at full speed.
//!
//! A **tick** is the runtime's abstract time unit. Transports quote
//! delivery times in ticks, RPC deadlines and backoffs are ticks, and the
//! virtual clock jumps straight from one scheduled tick to the next.

use std::sync::atomic::{AtomicU64, Ordering};

/// Abstract runtime time, in ticks.
pub type Tick = u64;

/// A source of time for the node runtime.
///
/// The runtime is the only caller of [`advance_to`]; nodes may only *read*
/// the clock. Implementations must be monotonic: `now()` never decreases,
/// and after `advance_to(t)` returns, `now() >= t`.
///
/// [`advance_to`]: Clock::advance_to
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> Tick;

    /// Blocks until `now() >= t`: a virtual clock jumps, a real clock
    /// waits. Called by the runtime between rounds when no work is due.
    fn advance_to(&self, t: Tick);
}

/// The deterministic lock-step clock: time is a counter that moves only
/// when the runtime advances it to the next scheduled event.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock starting at tick 0.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Tick {
        self.now.load(Ordering::Acquire)
    }

    fn advance_to(&self, t: Tick) {
        self.now.fetch_max(t, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_starts_at_zero_and_jumps() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), 0);
        c.advance_to(17);
        assert_eq!(c.now(), 17);
    }

    #[test]
    fn virtual_clock_never_goes_backwards() {
        let c = VirtualClock::new();
        c.advance_to(100);
        c.advance_to(40);
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn clock_is_usable_as_a_trait_object() {
        let c: Box<dyn Clock> = Box::new(VirtualClock::new());
        c.advance_to(3);
        assert_eq!(c.now(), 3);
    }
}
