//! The concurrent node runtime: round-based lock-step execution of a whole
//! cluster of actors over worker threads.
//!
//! # Execution model
//!
//! The runtime repeatedly executes **rounds**. One round, at tick *t*:
//! every node — in parallel over `canon-par` workers — drains the messages
//! due at or before *t* from its mailbox, handles them, and fires its due
//! RPC timers. Between rounds the runtime finds the earliest pending event
//! (mailbox delivery or timer) and advances the [`Clock`] to it, so a
//! virtual clock jumps straight from event to event while a real clock
//! waits out the gap.
//!
//! # Why this is deterministic
//!
//! Three properties make a run a pure function of its inputs, independent
//! of the number of worker threads:
//!
//! 1. transports quote delivery at least one tick in the future, so the
//!    set of messages due in round *t* is fixed before the round starts —
//!    no worker can add same-round work;
//! 2. mailbox heaps order delivery by the arrival-order-independent key
//!    `(deliver_at, from, seq)`, so a node drains the same messages in the
//!    same order no matter how sends interleaved;
//! 3. nodes share no state — each is locked by exactly one worker per
//!    round, and everything it does is a function of its own state and the
//!    drained messages.
//!
//! `tests/determinism.rs` checks the consequence: the same seed produces a
//! byte-identical event log on 1, 4 and 8 worker threads.

use crate::cache::{CacheConfig, CacheSummary};
use crate::clock::{Clock, Tick};
use crate::framed::{self, LinkBytes, WireSummary};
use crate::msg::{Command, Completion, Outcome, Payload};
use crate::node::{Net, NodeState, NodeStats};
use crate::rpc::RpcConfig;
use crate::shard::ShardBackend;
use crate::transport::{lock_unpoisoned, Envelope, Mailboxes, Transport};
use canon_id::ring::SortedRing;
use canon_id::NodeId;
use canon_par::par_map;
use canon_store::Policy;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// Cluster-wide node parameters.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Per-node RPC retry/deadline policy.
    pub rpc: RpcConfig,
    /// Replica placement policy, shared with canon-store's engine (the
    /// default, `Policy::Fixed(3)`, reproduces the pre-policy behavior:
    /// primary + 2 successor replicas).
    pub policy: Policy,
    /// Storage backend for each node's shard.
    pub backend: ShardBackend,
    /// Successor-list length (the root-ring leaf set).
    pub succ_list_len: usize,
    /// En-route read cache per node (the default, capacity 0, disables
    /// caching: no path accumulation, no fill or invalidation traffic).
    pub cache: CacheConfig,
    /// Record a per-node event log (for determinism checks; off for
    /// throughput runs).
    pub record_events: bool,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            rpc: RpcConfig::default(),
            policy: Policy::Fixed(3),
            backend: ShardBackend::Memory,
            succ_list_len: 8,
            cache: CacheConfig::default(),
            record_events: false,
        }
    }
}

/// Ground truth about one key's replication across the cluster, computed
/// by [`Runtime::replication_status`].
#[derive(Clone, Debug)]
pub struct ReplicationStatus {
    /// The key inspected.
    pub key: u64,
    /// The replica set the policy expects on the current live ring
    /// (responsible node first).
    pub expected: Vec<NodeId>,
    /// Live nodes actually holding the key.
    pub holders: Vec<NodeId>,
    /// Live nodes with the key pinned.
    pub pinned_at: Vec<NodeId>,
    /// Whether every expected replica holds the key.
    pub satisfied: bool,
}

/// Cluster-wide accounting, aggregated over every node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Summary {
    /// Client requests injected (each owes exactly one completion).
    pub injected: u64,
    /// Completions recorded at origins.
    pub completed: u64,
    /// Completions that succeeded.
    pub ok: u64,
    /// Gets answered with no stored value.
    pub not_found: u64,
    /// Requests whose every retry timed out.
    pub timed_out: u64,
    /// Duplicate responses detected (must be zero on a loss-free
    /// transport).
    pub duplicates: u64,
    /// Requests forwarded (intermediate hops).
    pub forwarded: u64,
    /// Requests served by responsible nodes.
    pub served: u64,
    /// Retransmissions sent.
    pub retransmits: u64,
    /// Messages the transport dropped.
    pub network_drops: u64,
    /// Messages discarded by departed nodes.
    pub dropped_dead: u64,
    /// Sends to unknown identifiers.
    pub undeliverable: u64,
    /// Requests dropped at the hop budget.
    pub hop_limit_drops: u64,
}

impl Summary {
    /// The zero-loss invariant the load harness asserts: every injected
    /// request completed exactly once and nothing completed twice.
    pub fn zero_loss(&self) -> bool {
        self.injected == self.completed && self.duplicates == 0
    }
}

/// A cluster of node actors sharing a [`Clock`], a [`Transport`] and a set
/// of mailboxes.
pub struct Runtime {
    clock: Arc<dyn Clock>,
    transport: Arc<dyn Transport>,
    config: RuntimeConfig,
    states: Vec<Mutex<NodeState>>,
    boxes: Mailboxes<Payload>,
    /// Identifier → mailbox slot.
    directory: BTreeMap<u64, usize>,
    /// Slot indices, cached for the per-round parallel map.
    slots: Vec<usize>,
    /// Sequence counter for injected client envelopes.
    client_seq: u64,
    /// Client requests injected so far.
    injected: u64,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("nodes", &self.states.len())
            .field("now", &self.clock.now())
            .field("injected", &self.injected)
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// An empty runtime; add nodes with [`Runtime::spawn`] or build a whole
    /// cluster with [`crate::cluster::from_graph`].
    pub fn new(
        clock: Arc<dyn Clock>,
        transport: Arc<dyn Transport>,
        config: RuntimeConfig,
    ) -> Runtime {
        Runtime {
            clock,
            transport,
            config,
            states: Vec::new(),
            boxes: Mailboxes::new(0),
            directory: BTreeMap::new(),
            slots: Vec::new(),
            client_seq: 0,
            injected: 0,
        }
    }

    /// The cluster's clock.
    pub fn clock(&self) -> &dyn Clock {
        self.clock.as_ref()
    }

    /// The cluster configuration.
    pub fn config(&self) -> RuntimeConfig {
        self.config
    }

    /// Number of nodes ever hosted (departed nodes keep their slot).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the runtime hosts no nodes.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Every hosted identifier, in slot order.
    pub fn ids(&self) -> Vec<NodeId> {
        self.states.iter().map(|s| lock_unpoisoned(s).id).collect()
    }

    /// Client requests injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Adds a blank node (no links, no data) with the given identifier and
    /// returns its slot. The node participates once it joins through
    /// [`Command::Join`] or is seeded directly via
    /// [`Runtime::spawn_seeded`].
    ///
    /// # Panics
    ///
    /// Panics if the identifier is already hosted.
    pub fn spawn(&mut self, id: NodeId) -> usize {
        self.spawn_inner(id, BTreeSet::new(), Vec::new(), None, false)
    }

    /// Adds a node with pre-seeded links, successor list and predecessor
    /// (cluster construction), returning its slot.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is already hosted.
    pub fn spawn_seeded(
        &mut self,
        id: NodeId,
        links: BTreeSet<NodeId>,
        succ_list: Vec<NodeId>,
        pred: Option<NodeId>,
    ) -> usize {
        self.spawn_inner(id, links, succ_list, pred, true)
    }

    fn spawn_inner(
        &mut self,
        id: NodeId,
        links: BTreeSet<NodeId>,
        succ_list: Vec<NodeId>,
        pred: Option<NodeId>,
        joined: bool,
    ) -> usize {
        assert!(
            !self.directory.contains_key(&id.raw()),
            "node {id} already hosted"
        );
        let slot = self.boxes.grow();
        self.states.push(Mutex::new(NodeState::new(
            id,
            slot,
            links,
            succ_list,
            pred,
            joined,
            &self.config,
        )));
        self.directory.insert(id.raw(), slot);
        self.slots.push(slot);
        slot
    }

    /// Injects a client command at `origin`, due in the next round.
    /// Injection bypasses the transport: client work cannot be lost.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is not hosted.
    pub fn inject(&mut self, origin: NodeId, cmd: Command) {
        let slot = *self
            .directory
            .get(&origin.raw())
            // Injecting at an unhosted node is harness misuse, not a runtime state.
            // audit: allow(panic-site) — the documented `# Panics` contract.
            .unwrap_or_else(|| panic!("unknown origin {origin}"));
        if matches!(cmd, Command::Issue(_) | Command::Join { .. }) {
            self.injected += 1;
        }
        self.client_seq += 1;
        let now = self.clock.now();
        self.boxes.push(
            slot,
            Envelope {
                from: origin,
                to: origin,
                sent_at: now,
                deliver_at: now,
                seq: self.client_seq,
                payload: Payload::Client(cmd),
            },
        );
    }

    /// Executes one round at the current tick: every node, in parallel,
    /// drains its due messages and fires its due timers. Returns the
    /// number of events processed.
    pub fn step(&self) -> usize {
        let now = self.clock.now();
        par_map(&self.slots, |_, &slot| self.process_cell(slot, now))
            .into_iter()
            .sum()
    }

    fn process_cell(&self, slot: usize, now: Tick) -> usize {
        let envs = self.boxes.drain_due(slot, now);
        let mut state = lock_unpoisoned(&self.states[slot]);
        let net = Net {
            boxes: &self.boxes,
            transport: self.transport.as_ref(),
            directory: &self.directory,
            now,
        };
        let mut n = envs.len();
        for env in envs {
            state.handle(&net, env);
        }
        n += state.fire_timers(&net);
        // With a framing transport in the stack, sends were staged instead
        // of entering mailboxes; coalesce them into frames, round-trip each
        // frame through the wire codec and deliver the decoded envelopes —
        // all while this node's lock is still held, so the round stays one
        // atomic unit per node.
        if let Some(view) = self.transport.framing() {
            framed::flush_outbox(&self.boxes, self.transport.as_ref(), view, &mut state, now);
        }
        n
    }

    /// The earliest pending event (mailbox delivery or armed timer) across
    /// the cluster, or `None` if the cluster is idle.
    pub fn next_event(&self) -> Option<Tick> {
        let mut next: Option<Tick> = None;
        let mut fold = |t: Option<Tick>| {
            if let Some(t) = t {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        for &slot in &self.slots {
            fold(self.boxes.next_due(slot));
            fold(lock_unpoisoned(&self.states[slot]).next_timer());
        }
        next
    }

    /// Runs rounds, advancing the clock between them, until no message is
    /// queued and no timer is armed — the graceful-shutdown drain. Returns
    /// the number of rounds executed.
    pub fn run_until_idle(&self) -> u64 {
        let mut rounds = 0;
        loop {
            if self.step() > 0 {
                rounds += 1;
            }
            match self.next_event() {
                Some(t) => {
                    let now = self.clock.now();
                    self.clock.advance_to(t.max(now + 1));
                }
                None => break,
            }
        }
        rounds
    }

    /// All completion records, in slot order then per-origin issue order.
    pub fn completions(&self) -> Vec<Completion> {
        self.states
            .iter()
            .flat_map(|s| lock_unpoisoned(s).completions.clone())
            .collect()
    }

    /// The concatenated per-node event logs (slot order). Only populated
    /// when [`RuntimeConfig::record_events`] is set; under a virtual clock
    /// this log is byte-identical for a given seed across worker-thread
    /// counts.
    pub fn event_log(&self) -> Vec<String> {
        self.states
            .iter()
            .flat_map(|s| lock_unpoisoned(s).events.clone())
            .collect()
    }

    /// Round-trip latency samples from every origin's observer sink, in
    /// slot order.
    pub fn rtt_samples(&self) -> Vec<f64> {
        self.states
            .iter()
            .flat_map(|s| lock_unpoisoned(s).rtt_sink.samples().to_vec())
            .collect()
    }

    /// Total forwarding-side hop events across the cluster, as
    /// `(attempts, hops)` from the per-node [`canon_overlay::HopCount`]
    /// sinks.
    pub fn hop_totals(&self) -> (usize, usize) {
        self.states.iter().fold((0, 0), |(a, h), s| {
            let sink = lock_unpoisoned(s).hop_sink;
            (a + sink.attempts, h + sink.hops)
        })
    }

    /// Aggregates the cluster-wide [`Summary`].
    pub fn summary(&self) -> Summary {
        let mut sum = Summary {
            injected: self.injected,
            ..Summary::default()
        };
        for s in &self.states {
            let state = lock_unpoisoned(s);
            let NodeStats {
                forwarded,
                served,
                replicas_stored: _,
                duplicate_responses,
                undeliverable,
                network_drops,
                dropped_dead,
                hop_limit_drops,
                retransmits,
            } = state.stats;
            sum.forwarded += forwarded;
            sum.served += served;
            sum.duplicates += duplicate_responses;
            sum.undeliverable += undeliverable;
            sum.network_drops += network_drops;
            sum.dropped_dead += dropped_dead;
            sum.hop_limit_drops += hop_limit_drops;
            sum.retransmits += retransmits;
            sum.completed += state.completions.len() as u64;
            for c in &state.completions {
                match c.outcome {
                    Outcome::Ok => sum.ok += 1,
                    Outcome::NotFound => sum.not_found += 1,
                    Outcome::TimedOut => sum.timed_out += 1,
                }
            }
        }
        sum
    }

    /// Aggregates cluster-wide cache accounting from every node's
    /// [`crate::cache::CacheTally`] sink. Kept out of [`Summary`] (like
    /// [`Runtime::wire_summary`]) so cached and uncached runs of the same
    /// workload produce byte-identical core summaries.
    pub fn cache_summary(&self) -> CacheSummary {
        let mut sum = CacheSummary::default();
        for s in &self.states {
            let state = lock_unpoisoned(s);
            let t = state.cache.tally();
            sum.entries += state.cache.len() as u64;
            sum.tally.hits += t.hits;
            sum.tally.misses += t.misses;
            sum.tally.fills += t.fills;
            sum.tally.stale_fills += t.stale_fills;
            sum.tally.corrupt_fills += t.corrupt_fills;
            sum.tally.invalidations += t.invalidations;
            sum.tally.evictions += t.evictions;
        }
        sum
    }

    /// Per-node forwarding load (requests forwarded as an intermediate
    /// hop), in slot order — the hot-spot measurement the flash-crowd
    /// bench reports max/mean over.
    pub fn forwarding_loads(&self) -> Vec<u64> {
        self.states
            .iter()
            .map(|s| lock_unpoisoned(s).stats.forwarded)
            .collect()
    }

    /// Aggregated wire-layer accounting when the transport stack frames
    /// (see [`crate::framed`]), or `None` for an unframed stack. Kept out
    /// of [`Summary`] so framed and unframed runs of the same workload
    /// produce byte-identical summaries.
    pub fn wire_summary(&self) -> Option<WireSummary> {
        self.transport.framing().map(|view| view.ledger.summary())
    }

    /// Per-link wire byte counters when the transport stack frames, keyed
    /// by directed `(from, to)` node pairs; `None` for an unframed stack.
    pub fn link_bytes(&self) -> Option<BTreeMap<(NodeId, NodeId), LinkBytes>> {
        self.transport
            .framing()
            .map(|view| view.ledger.link_bytes())
    }

    fn with_node<R>(&self, id: NodeId, f: impl FnOnce(&mut NodeState) -> R) -> R {
        let slot = *self
            .directory
            .get(&id.raw())
            // Asking about an unhosted id is harness misuse (see `# Panics`).
            // audit: allow(panic-site) — the documented `# Panics` contract.
            .unwrap_or_else(|| panic!("unknown node {id}"));
        f(&mut lock_unpoisoned(&self.states[slot]))
    }

    /// A node's current link table.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not hosted (as do the other per-node inspectors).
    pub fn links_of(&self, id: NodeId) -> BTreeSet<NodeId> {
        self.with_node(id, |n| n.links.clone())
    }

    /// A node's current successor list, nearest first.
    pub fn succ_of(&self, id: NodeId) -> Vec<NodeId> {
        self.with_node(id, |n| n.succ_list.clone())
    }

    /// A node's current predecessor.
    pub fn pred_of(&self, id: NodeId) -> Option<NodeId> {
        self.with_node(id, |n| n.pred)
    }

    /// A node's store shard contents.
    pub fn shard_of(&self, id: NodeId) -> BTreeMap<u64, u64> {
        self.with_node(id, |n| n.shard.entries().into_iter().collect())
    }

    /// The keys currently pinned at a node.
    pub fn pinned_of(&self, id: NodeId) -> BTreeSet<u64> {
        self.with_node(id, |n| n.pinned.clone())
    }

    /// Whether the node has left the overlay.
    pub fn is_dead(&self, id: NodeId) -> bool {
        self.with_node(id, |n| n.dead)
    }

    /// Ground truth for one key: the replica set the configured policy
    /// expects on the current live ring, the live nodes actually holding
    /// the key, pin locations, and whether expectation is met. This is the
    /// cluster-level `replication_status(key)` the audit probes call after
    /// a run settles.
    pub fn replication_status(&self, key: u64) -> ReplicationStatus {
        let mut live = Vec::with_capacity(self.states.len());
        let mut holders = Vec::new();
        let mut pinned_at = Vec::new();
        for s in &self.states {
            let mut state = lock_unpoisoned(s);
            if state.dead {
                continue;
            }
            live.push(state.id);
            if state.shard.contains(key) {
                holders.push(state.id);
            }
            if state.pinned.contains(&key) {
                pinned_at.push(state.id);
            }
        }
        let ring = SortedRing::new(live);
        let expected = self.config.policy.replicas_on_ring(&ring, NodeId::new(key));
        let satisfied = !expected.is_empty() && expected.iter().all(|e| holders.contains(e));
        ReplicationStatus {
            key,
            expected,
            holders,
            pinned_at,
            satisfied,
        }
    }
}

/// Model-checking hooks: single-step message delivery, fault actions and
/// state snapshots for canon-audit's protocol explorer. Nothing here runs
/// on the production path — the whole block is feature-gated.
#[cfg(feature = "model")]
impl Runtime {
    /// Every queued envelope across the cluster as `(slot, envelope)`
    /// pairs, slot-major, each slot in `(deliver_at, from, seq)` order.
    pub fn model_pending(&self) -> Vec<(usize, Envelope<Payload>)> {
        let mut out = Vec::new();
        for &slot in &self.slots {
            for env in self.boxes.peek_all(slot) {
                out.push((slot, env));
            }
        }
        out
    }

    /// Delivers exactly the message identified by `(slot, from, seq)`,
    /// advancing the clock to its quoted delivery tick first, and lets the
    /// destination handle it. Returns `false` if no such message is
    /// queued. Timers are deliberately *not* fired: a checker-driven
    /// runtime uses RPC deadlines far beyond any explored trace, so no
    /// timer can ever be due.
    pub fn model_deliver(&self, slot: usize, from: NodeId, seq: u64) -> bool {
        let Some(env) = self.boxes.take(slot, from, seq) else {
            return false;
        };
        self.clock.advance_to(env.deliver_at);
        let now = self.clock.now();
        let net = Net {
            boxes: &self.boxes,
            transport: self.transport.as_ref(),
            directory: &self.directory,
            now,
        };
        let mut state = lock_unpoisoned(&self.states[slot]);
        state.handle(&net, env);
        // A framing transport stages sends; flush so the checker sees the
        // handler's outgoing messages queued, same as a stepped round.
        if let Some(view) = self.transport.framing() {
            framed::flush_outbox(&self.boxes, self.transport.as_ref(), view, &mut state, now);
        }
        true
    }

    /// Removes the message identified by `(slot, from, seq)` without
    /// delivering it — the checker's message-loss / partition-cut action.
    /// Returns whether the message was queued.
    pub fn model_drop(&self, slot: usize, from: NodeId, seq: u64) -> bool {
        self.boxes.take(slot, from, seq).is_some()
    }

    /// Crash-stops a node: it goes dark with no handoff and no notices
    /// (unlike the graceful [`Command::Leave`]). Pending messages to the
    /// node remain queued; delivering them is counted as `dropped_dead`.
    pub fn model_crash(&self, id: NodeId) {
        if let Some(&slot) = self.directory.get(&id.raw()) {
            lock_unpoisoned(&self.states[slot]).dead = true;
        }
    }

    /// Arms the seeded broken-handover fault at `id`: its join grants
    /// "forget" the handed-over shard entries. This is the deliberately
    /// planted bug the checker's counterexample-replay regression test
    /// must find, minimize and replay.
    pub fn model_break_handover(&self, id: NodeId) {
        if let Some(&slot) = self.directory.get(&id.raw()) {
            lock_unpoisoned(&self.states[slot]).broken_handover = true;
        }
    }

    /// Per-node protocol snapshots, in slot order.
    pub fn model_snapshot(&self) -> Vec<crate::model::NodeSnapshot> {
        self.states
            .iter()
            .map(|s| {
                let mut state = lock_unpoisoned(s);
                crate::model::NodeSnapshot {
                    id: state.id,
                    links: state.links.iter().copied().collect(),
                    succ_list: state.succ_list.clone(),
                    pred: state.pred,
                    dead: state.dead,
                    joined: state.joined,
                    shard: {
                        let mut entries = state.shard.entries();
                        entries.sort_unstable();
                        entries
                    },
                    pinned: state.pinned.iter().copied().collect(),
                    inflight: state.rpc.inflight_entries(),
                    allocated: state.rpc.allocated(),
                    deferred: state.deferred.clone(),
                    completions: state.completions.clone(),
                    cache: state.cache.snapshot(),
                    cache_tombstones: state.cache.tombstones(),
                }
            })
            .collect()
    }

    /// The cluster-state fingerprint over [`Runtime::model_snapshot`] and
    /// [`Runtime::model_pending`] (see [`crate::model::fingerprint`]).
    pub fn model_fingerprint(&self) -> u64 {
        crate::model::fingerprint(&self.model_snapshot(), &self.model_pending())
    }
}
