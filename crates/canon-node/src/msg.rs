//! The wire vocabulary of the node runtime.
//!
//! Three kinds of traffic share the mailboxes:
//!
//! * [`Command`]s — client work injected by the harness at an origin node
//!   (they do not cross the network and cannot be lost);
//! * routed RPCs — a [`Payload::Request`] forwarded greedily hop by hop
//!   toward the key's responsible node, answered by a single
//!   [`Payload::Response`] sent straight back to the origin;
//! * one-way maintenance messages — replication fan-out and the join/leave
//!   repair notices ported from `canon-sim`'s churn protocol.
//!
//! Every request carries the origin's request id; the origin's RPC table
//! ([`crate::rpc`]) matches responses, detects duplicates, and drives
//! retries. A finished request becomes a [`Completion`] record — the unit
//! of the zero-loss accounting (`injected == completed`, zero duplicates)
//! that the load harness checks.

use crate::clock::Tick;
use canon_id::NodeId;

/// A client operation served by the DHT.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Locate the node responsible for `key`.
    Lookup {
        /// The key to locate.
        key: u64,
    },
    /// Store `value` under `key` on the responsible node and its replicas.
    Put {
        /// The key to store under.
        key: u64,
        /// The value to store.
        value: u64,
    },
    /// Fetch the value stored under `key`.
    Get {
        /// The key to fetch.
        key: u64,
    },
    /// Locate the predecessor of `joiner` and obtain a join grant.
    Join {
        /// The joining node.
        joiner: NodeId,
    },
    /// Ask the responsible node how `key` is replicated (expected replica
    /// count under the policy, pin state).
    Status {
        /// The key to report on.
        key: u64,
    },
    /// Pin `key` at its responsible node: pinned entries are copied, not
    /// moved, by join handovers, so the node keeps serving them.
    Pin {
        /// The key to pin.
        key: u64,
    },
    /// Clear a pin set by [`Op::Pin`].
    Unpin {
        /// The key to unpin.
        key: u64,
    },
}

impl Op {
    /// The identifier-space point the request is routed toward.
    pub fn key_point(&self) -> NodeId {
        match *self {
            Op::Lookup { key }
            | Op::Put { key, .. }
            | Op::Get { key }
            | Op::Status { key }
            | Op::Pin { key }
            | Op::Unpin { key } => NodeId::new(key),
            Op::Join { joiner } => joiner,
        }
    }

    /// The operation's kind tag.
    pub fn kind(&self) -> OpKind {
        match self {
            Op::Lookup { .. } => OpKind::Lookup,
            Op::Put { .. } => OpKind::Put,
            Op::Get { .. } => OpKind::Get,
            Op::Join { .. } => OpKind::Join,
            Op::Status { .. } => OpKind::Status,
            Op::Pin { .. } => OpKind::Pin,
            Op::Unpin { .. } => OpKind::Unpin,
        }
    }
}

/// Kind tag for [`Op`] (used in completion records and stats).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    /// A lookup request.
    Lookup,
    /// A put request.
    Put,
    /// A get request.
    Get,
    /// A join locate request.
    Join,
    /// A replication-status request.
    Status,
    /// A pin request.
    Pin,
    /// An unpin request.
    Unpin,
}

/// The state handed from a predecessor to a joining node: everything the
/// newcomer needs to start serving (the message-level port of the join
/// half of `canon-sim`'s maintenance protocol).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinGrant {
    /// The granting node — the joiner's ring predecessor.
    pub predecessor: NodeId,
    /// The predecessor's link table, for the newcomer to bootstrap its own.
    pub links: Vec<NodeId>,
    /// The predecessor's successor list *before* the join — exactly the
    /// newcomer's successor list, since it sits immediately after the
    /// predecessor.
    pub succ_list: Vec<NodeId>,
    /// Shard entries whose responsibility moves to the newcomer.
    pub shard: Vec<(u64, u64)>,
}

/// The result carried by a [`Payload::Response`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RpcResult {
    /// Lookup: the responsible node.
    Found {
        /// The node responsible for the key.
        responsible: NodeId,
    },
    /// Put: stored on the primary, replicated to `replicas` successors.
    Stored {
        /// The responsible node that stored the value.
        primary: NodeId,
        /// Replicate messages fanned out to successors.
        replicas: u32,
    },
    /// Get: the value (if present) and the serving node.
    Value {
        /// The stored value, if any.
        value: Option<u64>,
        /// The node that answered.
        served_by: NodeId,
    },
    /// Join: the predecessor's grant.
    Granted(JoinGrant),
    /// Status: how the responsible node replicates the key.
    Status {
        /// The node responsible for the key.
        primary: NodeId,
        /// Replicas the policy expects for the key (primary included).
        expected: u32,
        /// Whether the key is pinned at the primary.
        pinned: bool,
    },
    /// Pin/unpin acknowledgment.
    PinAck {
        /// The node responsible for the key.
        primary: NodeId,
        /// The pin state after the operation.
        pinned: bool,
    },
}

/// Client work injected at an origin node by the harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// Issue `op` as an RPC owned by this node.
    Issue(Op),
    /// Join the overlay through `bootstrap`.
    Join {
        /// A live node the newcomer knows.
        bootstrap: NodeId,
    },
    /// Leave gracefully: hand the shard to the node inheriting the key
    /// range and notify the neighborhood.
    Leave,
}

/// Everything a mailbox can deliver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Locally injected client work.
    Client(Command),
    /// A routed RPC in flight toward the responsible node.
    Request {
        /// The node that owns the RPC.
        origin: NodeId,
        /// Origin-scoped request id.
        req: u64,
        /// Which (re)transmission this is, 0-based.
        attempt: u32,
        /// Hops taken so far.
        hops: u32,
        /// The operation.
        op: Op,
        /// The nodes the request passed through, in hop order — the
        /// fill fan-out set for en-route caching. Empty unless the op is
        /// a GET and caching is enabled (see [`crate::cache`]); bounded
        /// by the hop limit.
        path: Vec<NodeId>,
    },
    /// The answer, sent directly back to the origin.
    Response {
        /// The request id being answered.
        req: u64,
        /// Hops the request took to reach the responder.
        hops: u32,
        /// The result.
        result: RpcResult,
    },
    /// Replication fan-out from a primary to a successor (one-way: the
    /// primary acks the client without waiting for replicas; durability is
    /// audited by the protocol checker, not acknowledged per copy).
    // audit: fire-and-forget
    Replicate {
        /// The key to store.
        key: u64,
        /// The value to store.
        value: u64,
    },
    /// Join repair notice: `joined` is now live (sent by its predecessor
    /// to the neighborhood; best-effort, no reply expected).
    // audit: fire-and-forget
    RepairJoin {
        /// The newly joined node.
        joined: NodeId,
    },
    /// A leaving node hands its shard to the node inheriting its key range
    /// (its predecessor, under largest-id-≤-key responsibility). The
    /// departing node cannot wait for an ack — it is already dark; the
    /// checker's crash-before-handover-ack scenario probes this window.
    // audit: fire-and-forget
    LeaveHandoff {
        /// The departing node.
        departing: NodeId,
        /// Its shard entries.
        shard: Vec<(u64, u64)>,
    },
    /// Leave repair notice: `departing` is gone; its successor and
    /// predecessor are attached so recipients can mend their tables
    /// (best-effort, no reply expected).
    // audit: fire-and-forget
    LeaveNotice {
        /// The departing node.
        departing: NodeId,
        /// The departing node's ring successor.
        successor: NodeId,
        /// The departing node's ring predecessor.
        predecessor: NodeId,
    },
    /// En-route cache fill: after serving a GET, the responsible node
    /// plants the value at every node the request passed through (§4.2's
    /// response-path population; one-way, best-effort — a lost fill only
    /// costs a future cache miss).
    // audit: fire-and-forget
    CacheFill {
        /// The key the value is stored under.
        key: u64,
        /// The value served.
        value: u64,
        /// The owner's write stamp (version) for the key.
        stamp: u64,
        /// The responsible node issuing the fill.
        owner: NodeId,
        /// Raw content id of the value bytes; the cacher verifies it
        /// before accepting the fill.
        cid: u64,
        /// Hops from the owner at fill time — the entry's eviction level.
        level: u32,
    },
    /// Owner-driven cache invalidation, sent to every registered cacher
    /// when a PUT overwrites the key (one-way: the owner acks the PUT
    /// without waiting for cachers; coherence under races is explored by
    /// the protocol checker's invalidation scenario).
    // audit: fire-and-forget
    CacheInvalidate {
        /// The overwritten key.
        key: u64,
        /// The invalidating owner.
        owner: NodeId,
        /// Fills from this owner stamped below the floor are stale.
        floor: u64,
    },
}

impl Payload {
    /// A stable label for the payload's variant, used by the wire layer's
    /// per-payload-kind byte accounting.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Payload::Client(_) => "client",
            Payload::Request { .. } => "request",
            Payload::Response { .. } => "response",
            Payload::Replicate { .. } => "replicate",
            Payload::RepairJoin { .. } => "repair-join",
            Payload::LeaveHandoff { .. } => "leave-handoff",
            Payload::LeaveNotice { .. } => "leave-notice",
            Payload::CacheFill { .. } => "cache-fill",
            Payload::CacheInvalidate { .. } => "cache-invalidate",
        }
    }
}

/// How a request ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Answered successfully.
    Ok,
    /// Answered: the key had no stored value (gets only).
    NotFound,
    /// Every retry timed out.
    TimedOut,
}

/// One finished request, recorded at its origin — the unit of zero-loss
/// accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The origin node.
    pub origin: NodeId,
    /// The origin-scoped request id.
    pub req: u64,
    /// The operation kind.
    pub kind: OpKind,
    /// The routed key point.
    pub key: u64,
    /// How the request ended.
    pub outcome: Outcome,
    /// The answering node, if any.
    pub responder: Option<NodeId>,
    /// The fetched value (gets only).
    pub value: Option<u64>,
    /// Hops the answered attempt took.
    pub hops: u32,
    /// Transmissions used (1 = no retries).
    pub attempts: u32,
    /// When the RPC was opened.
    pub issued_at: Tick,
    /// When it completed.
    pub completed_at: Tick,
}

impl Completion {
    /// Round-trip latency in ticks.
    pub fn latency(&self) -> Tick {
        self.completed_at - self.issued_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_route_toward_their_key() {
        assert_eq!(Op::Lookup { key: 9 }.key_point(), NodeId::new(9));
        assert_eq!(Op::Put { key: 3, value: 1 }.key_point(), NodeId::new(3));
        assert_eq!(Op::Get { key: 4 }.key_point(), NodeId::new(4));
        let j = NodeId::new(77);
        assert_eq!(Op::Join { joiner: j }.key_point(), j);
        assert_eq!(Op::Join { joiner: j }.kind(), OpKind::Join);
    }

    #[test]
    fn completion_latency_is_ticks_between_issue_and_finish() {
        let c = Completion {
            origin: NodeId::new(1),
            req: 0,
            kind: OpKind::Lookup,
            key: 5,
            outcome: Outcome::Ok,
            responder: Some(NodeId::new(2)),
            value: None,
            hops: 3,
            attempts: 1,
            issued_at: 10,
            completed_at: 25,
        };
        assert_eq!(c.latency(), 15);
    }
}
