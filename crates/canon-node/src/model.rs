//! Model-checking support for canon-audit's protocol explorer (only
//! compiled under the `model` feature).
//!
//! The production runtime executes *rounds*: every node drains all due
//! messages at once, in mailbox-heap order. The model checker instead
//! wants to pick **one** pending message at a time and explore every
//! delivery order. This module supplies the pieces that make that
//! exploration deterministic and comparable:
//!
//! * [`ModelClock`] — a lock-step counter (the virtual clock, re-badged
//!   for the checker's single-step discipline);
//! * [`ModelTransport`] — fixed one-tick latency, no loss, no jitter,
//!   plus an explicit partition set. The *only* nondeterminism left in a
//!   model run is the checker's choice of which pending message to
//!   deliver next;
//! * [`NodeSnapshot`] — a per-node protocol-state extract used both for
//!   invariant checking and for state fingerprints;
//! * [`fingerprint`] — an order-insensitive, tick-insensitive hash of the
//!   whole cluster state, so the explorer can recognize that two delivery
//!   orders converged and prune the duplicate subtree.
//!
//! Fingerprints deliberately exclude every [`Tick`] and every absolute
//! sequence number: those vary with the delivery order even when the
//! protocol state is identical. Per-pair FIFO *order* of pending messages
//! is preserved (messages are hashed grouped by `(to, from)` in send
//! order), because it determines which future schedules are possible.

use crate::clock::{Clock, Tick, VirtualClock};
use crate::msg::{Command, Completion, JoinGrant, Op, Payload, RpcResult};
use crate::rpc::Pending;
use crate::transport::{lock_unpoisoned, Envelope, Transport};
use canon_id::NodeId;
use std::collections::BTreeSet;
use std::sync::Mutex;

/// The model checker's clock: a deterministic lock-step counter the
/// runtime's single-step delivery hook advances to each delivered
/// message's quoted tick. Identical in behavior to [`VirtualClock`];
/// the distinct type documents that a runtime driven by the checker never
/// advances time past an undelivered message (so RPC deadlines, set far
/// beyond any explored trace, can never fire mid-exploration).
#[derive(Debug, Default)]
pub struct ModelClock {
    inner: VirtualClock,
}

impl ModelClock {
    /// A model clock starting at tick 0.
    pub fn new() -> ModelClock {
        ModelClock::default()
    }
}

impl Clock for ModelClock {
    fn now(&self) -> Tick {
        self.inner.now()
    }

    fn advance_to(&self, t: Tick) {
        self.inner.advance_to(t);
    }
}

/// The model checker's transport: every message arrives after exactly one
/// tick unless a partition currently severs the directed pair, in which
/// case it is dropped at send time (exactly like
/// [`crate::transport::FaultyTransport`]'s partitions, but with no seeded
/// loss or jitter — the checker itself is the only source of schedule
/// nondeterminism).
#[derive(Debug, Default)]
pub struct ModelTransport {
    /// Directed `(from, to)` pairs the partition currently severs.
    blocked: Mutex<BTreeSet<(u64, u64)>>,
}

impl ModelTransport {
    /// A fully connected model network.
    pub fn new() -> ModelTransport {
        ModelTransport::default()
    }

    /// Severs every link between the two groups, in both directions, until
    /// [`ModelTransport::heal`] is called.
    pub fn partition(&self, a: &[NodeId], b: &[NodeId]) {
        let mut blocked = lock_unpoisoned(&self.blocked);
        for &x in a {
            for &y in b {
                blocked.insert((x.raw(), y.raw()));
                blocked.insert((y.raw(), x.raw()));
            }
        }
    }

    /// Removes every partition.
    pub fn heal(&self) {
        lock_unpoisoned(&self.blocked).clear();
    }

    /// Whether the directed pair is currently severed.
    pub fn is_blocked(&self, from: NodeId, to: NodeId) -> bool {
        lock_unpoisoned(&self.blocked).contains(&(from.raw(), to.raw()))
    }
}

impl Transport for ModelTransport {
    fn schedule(&self, now: Tick, from: NodeId, to: NodeId, _seq: u64) -> Option<Tick> {
        if self.is_blocked(from, to) {
            return None;
        }
        Some(now + 1)
    }
}

/// One node's protocol-visible state, extracted by
/// [`crate::runtime::Runtime::model_snapshot`] for invariant checking and
/// fingerprinting.
#[derive(Clone, Debug)]
pub struct NodeSnapshot {
    /// The node's identifier.
    pub id: NodeId,
    /// Its link table, sorted by id.
    pub links: Vec<NodeId>,
    /// Its successor list, nearest first.
    pub succ_list: Vec<NodeId>,
    /// Its predecessor, if known.
    pub pred: Option<NodeId>,
    /// Whether the node has left or crashed.
    pub dead: bool,
    /// Whether the node is an acknowledged ring member.
    pub joined: bool,
    /// Shard contents, sorted by key.
    pub shard: Vec<(u64, u64)>,
    /// Pinned keys, sorted.
    pub pinned: Vec<u64>,
    /// In-flight RPCs as `(req, pending)`, in id order.
    pub inflight: Vec<(u64, Pending)>,
    /// Request ids ever allocated by this node (monotone, never reused).
    pub allocated: u64,
    /// Routed requests parked until the node joins, in arrival order, as
    /// `(origin, req, attempt, hops, op, path)`.
    pub deferred: Vec<crate::node::RoutedRequest>,
    /// Completion records recorded at this origin.
    pub completions: Vec<Completion>,
    /// Cached en-route entries as
    /// `(key, value, owner, stamp, level, lru_rank)`, sorted by key (see
    /// [`crate::cache::NodeCache::snapshot`]). Empty when caching is
    /// disabled.
    pub cache: Vec<(u64, u64, NodeId, u64, u32, u64)>,
    /// Outstanding invalidation tombstones as `(key, owner, floor)`.
    pub cache_tombstones: Vec<(u64, NodeId, u64)>,
}

/// 64-bit FNV-1a over a word stream, finalized with a splitmix64 round —
/// hand-rolled so fingerprints are stable across std versions and
/// processes (counterexample replays must be byte-identical).
#[derive(Clone, Copy, Debug)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv {
        Fnv(Fnv::OFFSET)
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(Fnv::PRIME);
        }
    }

    fn finish(self) -> u64 {
        let mut z = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn hash_id(h: &mut Fnv, id: NodeId) {
    h.word(id.raw());
}

fn hash_opt_id(h: &mut Fnv, id: Option<NodeId>) {
    match id {
        None => h.word(0xA0),
        Some(id) => {
            h.word(0xA1);
            hash_id(h, id);
        }
    }
}

fn hash_op(h: &mut Fnv, op: &Op) {
    match *op {
        Op::Lookup { key } => {
            h.word(1);
            h.word(key);
        }
        Op::Put { key, value } => {
            h.word(2);
            h.word(key);
            h.word(value);
        }
        Op::Get { key } => {
            h.word(3);
            h.word(key);
        }
        Op::Join { joiner } => {
            h.word(4);
            hash_id(h, joiner);
        }
        Op::Status { key } => {
            h.word(5);
            h.word(key);
        }
        Op::Pin { key } => {
            h.word(6);
            h.word(key);
        }
        Op::Unpin { key } => {
            h.word(7);
            h.word(key);
        }
    }
}

fn hash_grant(h: &mut Fnv, g: &JoinGrant) {
    hash_id(h, g.predecessor);
    h.word(g.links.len() as u64);
    for &l in &g.links {
        hash_id(h, l);
    }
    h.word(g.succ_list.len() as u64);
    for &s in &g.succ_list {
        hash_id(h, s);
    }
    h.word(g.shard.len() as u64);
    for &(k, v) in &g.shard {
        h.word(k);
        h.word(v);
    }
}

fn hash_result(h: &mut Fnv, r: &RpcResult) {
    match r {
        RpcResult::Found { responsible } => {
            h.word(1);
            hash_id(h, *responsible);
        }
        RpcResult::Stored { primary, replicas } => {
            h.word(2);
            hash_id(h, *primary);
            h.word(u64::from(*replicas));
        }
        RpcResult::Value { value, served_by } => {
            h.word(3);
            h.word(value.map_or(u64::MAX, |v| v));
            h.word(u64::from(value.is_some()));
            hash_id(h, *served_by);
        }
        RpcResult::Granted(g) => {
            h.word(4);
            hash_grant(h, g);
        }
        RpcResult::Status {
            primary,
            expected,
            pinned,
        } => {
            h.word(5);
            hash_id(h, *primary);
            h.word(u64::from(*expected));
            h.word(u64::from(*pinned));
        }
        RpcResult::PinAck { primary, pinned } => {
            h.word(6);
            hash_id(h, *primary);
            h.word(u64::from(*pinned));
        }
    }
}

fn hash_command(h: &mut Fnv, c: &Command) {
    match c {
        Command::Issue(op) => {
            h.word(1);
            hash_op(h, op);
        }
        Command::Join { bootstrap } => {
            h.word(2);
            hash_id(h, *bootstrap);
        }
        Command::Leave => h.word(3),
    }
}

/// Hashes a payload's protocol content — everything except ticks, absolute
/// sequence numbers and request-id bookkeeping that varies with delivery
/// order without changing future behavior.
fn hash_payload(h: &mut Fnv, p: &Payload) {
    match p {
        Payload::Client(c) => {
            h.word(0x10);
            hash_command(h, c);
        }
        Payload::Request {
            origin,
            req,
            attempt,
            hops: _,
            op,
            path,
        } => {
            h.word(0x11);
            hash_id(h, *origin);
            h.word(*req);
            h.word(u64::from(*attempt));
            hash_op(h, op);
            // The path determines the eventual fill fan-out, so it is
            // protocol-relevant state.
            h.word(path.len() as u64);
            for &p in path {
                hash_id(h, p);
            }
        }
        Payload::Response {
            req,
            hops: _,
            result,
        } => {
            h.word(0x12);
            h.word(*req);
            hash_result(h, result);
        }
        Payload::Replicate { key, value } => {
            h.word(0x13);
            h.word(*key);
            h.word(*value);
        }
        Payload::RepairJoin { joined } => {
            h.word(0x14);
            hash_id(h, *joined);
        }
        Payload::LeaveHandoff { departing, shard } => {
            h.word(0x15);
            hash_id(h, *departing);
            h.word(shard.len() as u64);
            for &(k, v) in shard {
                h.word(k);
                h.word(v);
            }
        }
        Payload::LeaveNotice {
            departing,
            successor,
            predecessor,
        } => {
            h.word(0x16);
            hash_id(h, *departing);
            hash_id(h, *successor);
            hash_id(h, *predecessor);
        }
        Payload::CacheFill {
            key,
            value,
            stamp,
            owner,
            cid,
            level,
        } => {
            h.word(0x17);
            h.word(*key);
            h.word(*value);
            h.word(*stamp);
            hash_id(h, *owner);
            h.word(*cid);
            h.word(u64::from(*level));
        }
        Payload::CacheInvalidate { key, owner, floor } => {
            h.word(0x18);
            h.word(*key);
            hash_id(h, *owner);
            h.word(*floor);
        }
    }
}

fn hash_completion(h: &mut Fnv, c: &Completion) {
    hash_id(h, c.origin);
    h.word(c.kind as u64);
    h.word(c.key);
    h.word(match c.outcome {
        crate::msg::Outcome::Ok => 1,
        crate::msg::Outcome::NotFound => 2,
        crate::msg::Outcome::TimedOut => 3,
    });
    hash_opt_id(h, c.responder);
    h.word(c.value.map_or(u64::MAX, |v| v));
    h.word(u64::from(c.value.is_some()));
}

/// An order-insensitive, tick-insensitive fingerprint of the whole cluster
/// state: per-node protocol state plus pending messages grouped by
/// `(destination, sender)` pair in send (FIFO) order. Two explored states
/// with equal fingerprints behave identically under every future schedule,
/// so the explorer prunes one of them.
pub fn fingerprint(snaps: &[NodeSnapshot], pending: &[(usize, Envelope<Payload>)]) -> u64 {
    let mut h = Fnv::new();
    h.word(snaps.len() as u64);
    for s in snaps {
        hash_id(&mut h, s.id);
        h.word(u64::from(s.dead));
        h.word(u64::from(s.joined));
        h.word(s.links.len() as u64);
        for &l in &s.links {
            hash_id(&mut h, l);
        }
        h.word(s.succ_list.len() as u64);
        for &x in &s.succ_list {
            hash_id(&mut h, x);
        }
        hash_opt_id(&mut h, s.pred);
        h.word(s.shard.len() as u64);
        for &(k, v) in &s.shard {
            h.word(k);
            h.word(v);
        }
        h.word(s.pinned.len() as u64);
        for &k in &s.pinned {
            h.word(k);
        }
        h.word(s.allocated);
        h.word(s.inflight.len() as u64);
        for (req, p) in &s.inflight {
            h.word(*req);
            h.word(u64::from(p.attempt));
            hash_op(&mut h, &p.op);
        }
        h.word(s.deferred.len() as u64);
        for (origin, req, attempt, _hops, op, path) in &s.deferred {
            hash_id(&mut h, *origin);
            h.word(*req);
            h.word(u64::from(*attempt));
            hash_op(&mut h, op);
            h.word(path.len() as u64);
            for &p in path {
                hash_id(&mut h, p);
            }
        }
        // Cache state shapes future hits, fills and evictions, so it
        // splits states; the LRU *rank* (not the absolute tick) keeps the
        // fingerprint schedule-insensitive for equivalent recency orders.
        h.word(s.cache.len() as u64);
        for &(key, value, owner, stamp, level, lru_rank) in &s.cache {
            h.word(key);
            h.word(value);
            hash_id(&mut h, owner);
            h.word(stamp);
            h.word(u64::from(level));
            h.word(lru_rank);
        }
        h.word(s.cache_tombstones.len() as u64);
        for &(key, owner, floor) in &s.cache_tombstones {
            h.word(key);
            hash_id(&mut h, owner);
            h.word(floor);
        }
        // Completions are write-only output; hash them as a sorted
        // multiset so resolution order (which varies with the schedule
        // without affecting future behavior) does not split states.
        let mut cs: Vec<u64> = s
            .completions
            .iter()
            .map(|c| {
                let mut ch = Fnv::new();
                hash_completion(&mut ch, c);
                ch.finish()
            })
            .collect();
        cs.sort_unstable();
        h.word(cs.len() as u64);
        for c in cs {
            h.word(c);
        }
    }
    // Pending messages: group by (destination slot, sender), preserving
    // per-pair send order, which `(deliver_at, from, seq)` order already
    // gives us within a pair under the model transport's fixed latency.
    h.word(pending.len() as u64);
    let mut keyed: Vec<(usize, u64, u64, &Envelope<Payload>)> = pending
        .iter()
        .map(|(slot, env)| (*slot, env.from.raw(), env.seq, env))
        .collect();
    keyed.sort_by_key(|&(slot, from, seq, _)| (slot, from, seq));
    let mut prev: Option<(usize, u64)> = None;
    let mut pos: u64 = 0;
    for (slot, from, _seq, env) in keyed {
        pos = if prev == Some((slot, from)) {
            pos + 1
        } else {
            0
        };
        prev = Some((slot, from));
        h.word(slot as u64);
        h.word(from);
        h.word(pos);
        hash_payload(&mut h, &env.payload);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_transport_has_unit_latency_and_partitions() {
        let t = ModelTransport::new();
        let (a, b) = (NodeId::new(1), NodeId::new(2));
        assert_eq!(t.schedule(5, a, b, 0), Some(6));
        t.partition(&[a], &[b]);
        assert_eq!(t.schedule(5, a, b, 0), None);
        assert_eq!(t.schedule(5, b, a, 0), None);
        t.heal();
        assert_eq!(t.schedule(5, a, b, 9), Some(6));
    }

    #[test]
    fn fingerprint_ignores_ticks_and_absolute_seq() {
        let env = |seq, deliver_at| Envelope {
            from: NodeId::new(1),
            to: NodeId::new(2),
            sent_at: 0,
            deliver_at,
            seq,
            payload: Payload::Replicate { key: 7, value: 9 },
        };
        let a = fingerprint(&[], &[(0, env(5, 10))]);
        let b = fingerprint(&[], &[(0, env(99, 3))]);
        assert_eq!(a, b, "seq/tick must not affect the fingerprint");
        let c = fingerprint(
            &[],
            &[(
                0,
                Envelope {
                    payload: Payload::Replicate { key: 8, value: 9 },
                    ..env(5, 10)
                },
            )],
        );
        assert_ne!(a, c, "payload content must affect the fingerprint");
    }

    #[test]
    fn fingerprint_preserves_per_pair_fifo_order() {
        let env = |seq, key| Envelope {
            from: NodeId::new(1),
            to: NodeId::new(2),
            sent_at: 0,
            deliver_at: seq,
            seq,
            payload: Payload::Replicate { key, value: 0 },
        };
        let ab = fingerprint(&[], &[(0, env(1, 10)), (0, env(2, 20))]);
        let ba = fingerprint(&[], &[(0, env(1, 20)), (0, env(2, 10))]);
        assert_ne!(ab, ba, "per-pair message order is behaviorally relevant");
    }
}
