//! En-route read cache for the live GET path.
//!
//! The paper's §5 path-convergence property — routes toward the same key
//! converge as they approach its responsible node — is what makes caching
//! *along the path* effective: a copy planted at a convergence point
//! short-circuits every later request that funnels through it. This module
//! is the live-runtime generalization of `canon-store`'s static §4.2 proxy
//! caches ([`canon_store::CachePolicy`]): the same replacement discipline
//! (evict the *largest* level annotation first — entries far from the
//! owner serve only their own locality, while copies near the owner
//! intercept converged traffic from everywhere — LRU within a level), but
//! attached to a node actor and kept coherent by owner-driven
//! invalidation:
//!
//! * every cached entry carries the **owner** (the responsible node that
//!   issued the fill) and the owner's per-key **write stamp** (version);
//! * fills verify a [`ContentId`] over the value bytes before caching, so
//!   a corrupted fill is dropped, not served;
//! * an overwrite at the owner broadcasts `CacheInvalidate { floor }` to
//!   every registered cacher: the entry is removed and a bounded
//!   **tombstone** remembers the floor, so a slower in-flight fill stamped
//!   below it cannot resurrect the overwritten value.
//!
//! Hit/miss/fill/invalidate traffic streams through the
//! [`CacheObserver`] sink trait (the cache-layer sibling of
//! [`canon_overlay::RouteObserver`] and the framing layer's
//! `FrameObserver`); [`CacheTally`] is the counting sink behind
//! `Runtime::cache_summary()`.

use canon_id::NodeId;
use canon_store::ContentId;
use std::collections::BTreeMap;

/// Tombstones kept per node: one per key with an outstanding invalidation
/// floor. Bounded so a node's memory stays O(capacity) even under a write
/// storm; evicting the smallest key is deterministic and only widens the
/// (already best-effort) stale-fill window for the evicted key.
const TOMBSTONE_CAP: usize = 256;

/// Per-node cache parameters (part of the cluster-wide runtime config).
/// The default capacity is 0: caching off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheConfig {
    /// Entries kept per node. `0` disables en-route caching entirely: no
    /// path accumulation, no fills, no invalidation traffic — the wire
    /// behavior of a cache-free build.
    pub capacity: usize,
}

impl CacheConfig {
    /// A cache of `capacity` entries per node.
    pub fn with_capacity(capacity: usize) -> CacheConfig {
        CacheConfig { capacity }
    }
}

/// One cache-layer event, streamed to a [`CacheObserver`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheEvent {
    /// A GET was answered from this node's cache.
    Hit {
        /// The key served.
        key: u64,
        /// The entry's level annotation (hops from the owner at fill time).
        level: u32,
    },
    /// A GET consulted the cache and found nothing fresh.
    Miss {
        /// The key looked up.
        key: u64,
    },
    /// A fill was accepted (inserted or refreshed an entry).
    Fill {
        /// The key filled.
        key: u64,
        /// The entry's level annotation.
        level: u32,
    },
    /// A fill arrived stamped below the key's invalidation floor (or below
    /// an already-cached newer version) and was dropped.
    StaleFill {
        /// The key the stale fill was for.
        key: u64,
    },
    /// A fill's value bytes did not hash to its content id; dropped.
    CorruptFill {
        /// The key the corrupt fill was for.
        key: u64,
    },
    /// An owner invalidation was applied.
    Invalidate {
        /// The key invalidated.
        key: u64,
    },
    /// An entry was evicted to make room.
    Evict {
        /// The key evicted.
        key: u64,
        /// The evicted entry's level annotation.
        level: u32,
    },
}

/// A sink for [`CacheEvent`]s — the cache layer's observer seam, mirroring
/// [`canon_overlay::RouteObserver`] on the routing side and the framing
/// layer's `FrameObserver` on the wire side.
pub trait CacheObserver {
    /// Called once per cache-layer event, in the order they occur.
    fn on_cache_event(&mut self, event: &CacheEvent);
}

/// The counting [`CacheObserver`]: one counter per event kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheTally {
    /// GETs answered from cache.
    pub hits: u64,
    /// GETs that consulted the cache and missed.
    pub misses: u64,
    /// Fills accepted.
    pub fills: u64,
    /// Fills dropped as stale (below an invalidation floor or a cached
    /// newer version).
    pub stale_fills: u64,
    /// Fills dropped because the value failed content-id verification.
    pub corrupt_fills: u64,
    /// Owner invalidations applied.
    pub invalidations: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
}

impl CacheObserver for CacheTally {
    fn on_cache_event(&mut self, event: &CacheEvent) {
        match event {
            CacheEvent::Hit { .. } => self.hits += 1,
            CacheEvent::Miss { .. } => self.misses += 1,
            CacheEvent::Fill { .. } => self.fills += 1,
            CacheEvent::StaleFill { .. } => self.stale_fills += 1,
            CacheEvent::CorruptFill { .. } => self.corrupt_fills += 1,
            CacheEvent::Invalidate { .. } => self.invalidations += 1,
            CacheEvent::Evict { .. } => self.evictions += 1,
        }
    }
}

/// Cluster-wide cache accounting, aggregated by `Runtime::cache_summary()`.
/// Kept out of the runtime's `Summary` so cached and uncached runs of the
/// same workload still produce byte-identical core summaries.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheSummary {
    /// Entries currently cached across the cluster.
    pub entries: u64,
    /// Aggregated event counters.
    pub tally: CacheTally,
}

impl CacheSummary {
    /// Hit rate over all cache consultations, or 0 when none happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.tally.hits + self.tally.misses;
        if total == 0 {
            return 0.0;
        }
        self.tally.hits as f64 / total as f64
    }
}

/// What [`NodeCache::fill`] did with an offered entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FillOutcome {
    /// Cached (new entry or refresh of an older same-owner version).
    Accepted,
    /// Dropped: stamped below the key's invalidation floor or below an
    /// already-cached same-owner version.
    Stale,
    /// Dropped: value bytes failed content-id verification.
    Corrupt,
    /// Dropped: the cache is disabled (capacity 0).
    Disabled,
}

#[derive(Clone, Debug)]
struct Entry {
    value: u64,
    /// The owner's write stamp (version) the fill carried.
    stamp: u64,
    /// The responsible node that issued the fill.
    owner: NodeId,
    /// Hops from the owner at fill time — the §4.2 level annotation the
    /// eviction policy keys on.
    level: u32,
    /// LRU tick of the last hit or refresh.
    last_used: u64,
}

/// A bounded, level-annotated, owner-invalidated read cache — one per node
/// actor, consulted on every GET hop.
#[derive(Clone, Debug, Default)]
pub struct NodeCache {
    capacity: usize,
    entries: BTreeMap<u64, Entry>,
    /// Outstanding invalidation floors as key → `(owner, floor)`: fills
    /// from `owner` stamped below `floor` are stale. Cleared by the first
    /// acceptable fill; bounded by [`TOMBSTONE_CAP`].
    tombstones: BTreeMap<u64, (NodeId, u64)>,
    /// LRU tick, advanced on every lookup and fill.
    tick: u64,
    tally: CacheTally,
}

impl NodeCache {
    /// A cache per `cfg` (capacity 0 = disabled).
    pub fn new(cfg: CacheConfig) -> NodeCache {
        NodeCache {
            capacity: cfg.capacity,
            ..NodeCache::default()
        }
    }

    /// Whether caching is enabled (capacity > 0).
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The event counters accumulated so far.
    pub fn tally(&self) -> CacheTally {
        self.tally
    }

    /// Looks `key` up, bumping its LRU position on a hit. Disabled caches
    /// return `None` without counting a miss, so an uncached run's tally
    /// stays all-zero.
    pub fn lookup(&mut self, key: u64) -> Option<u64> {
        if !self.enabled() {
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.last_used = tick;
                let (value, level) = (e.value, e.level);
                self.tally.on_cache_event(&CacheEvent::Hit { key, level });
                Some(value)
            }
            None => {
                self.tally.on_cache_event(&CacheEvent::Miss { key });
                None
            }
        }
    }

    /// Offers a fill. The entry is accepted only if the value bytes hash
    /// to `cid`, the stamp clears any tombstoned invalidation floor for the
    /// same owner, and it is not older than an already-cached same-owner
    /// version. An acceptable fill clears the key's tombstone; a fill from
    /// a *different* owner always supersedes (responsibility moved).
    pub fn fill(
        &mut self,
        key: u64,
        value: u64,
        stamp: u64,
        owner: NodeId,
        cid: u64,
        level: u32,
    ) -> FillOutcome {
        if !self.enabled() {
            return FillOutcome::Disabled;
        }
        if !ContentId::from_raw(cid).verifies(&value.to_le_bytes()) {
            self.tally.on_cache_event(&CacheEvent::CorruptFill { key });
            return FillOutcome::Corrupt;
        }
        if let Some(&(t_owner, floor)) = self.tombstones.get(&key) {
            if t_owner == owner && stamp < floor {
                self.tally.on_cache_event(&CacheEvent::StaleFill { key });
                return FillOutcome::Stale;
            }
            self.tombstones.remove(&key);
        }
        if let Some(e) = self.entries.get(&key) {
            if e.owner == owner && stamp < e.stamp {
                self.tally.on_cache_event(&CacheEvent::StaleFill { key });
                return FillOutcome::Stale;
            }
        }
        self.tick += 1;
        let entry = Entry {
            value,
            stamp,
            owner,
            level,
            last_used: self.tick,
        };
        if self.entries.insert(key, entry).is_none() && self.entries.len() > self.capacity {
            self.evict(key);
        }
        self.tally.on_cache_event(&CacheEvent::Fill { key, level });
        FillOutcome::Accepted
    }

    /// Applies an owner invalidation: drops the key's entry (if it is the
    /// invalidating owner's) and tombstones the floor so slower in-flight
    /// fills stamped below it stay out.
    pub fn invalidate(&mut self, key: u64, owner: NodeId, floor: u64) {
        if !self.enabled() {
            return;
        }
        if self
            .entries
            .get(&key)
            .is_some_and(|e| e.owner == owner && e.stamp < floor)
        {
            self.entries.remove(&key);
        }
        self.tombstones.insert(key, (owner, floor));
        if self.tombstones.len() > TOMBSTONE_CAP {
            self.tombstones.pop_first();
        }
        self.tally.on_cache_event(&CacheEvent::Invalidate { key });
    }

    /// Evicts one entry (never the just-inserted `keep`): largest level
    /// first — a copy far from the owner serves only its own locality —
    /// breaking ties by least-recent use, exactly canon-store's §4.2 rule.
    fn evict(&mut self, keep: u64) {
        let victim = self
            .entries
            .iter()
            .filter(|(&k, _)| k != keep)
            .max_by_key(|(_, e)| (e.level, u64::MAX - e.last_used))
            .map(|(&k, e)| (k, e.level));
        if let Some((k, level)) = victim {
            self.entries.remove(&k);
            self.tally
                .on_cache_event(&CacheEvent::Evict { key: k, level });
        }
    }

    /// The cached entries, sorted by key, as
    /// `(key, value, owner, stamp, level, lru_rank)` — `lru_rank` is the
    /// entry's position in least-recently-used order (0 = coldest), so the
    /// extract is independent of absolute tick values. Used by the model
    /// checker's snapshots and fingerprints.
    pub fn snapshot(&self) -> Vec<(u64, u64, NodeId, u64, u32, u64)> {
        let mut by_use: Vec<(u64, u64)> = self
            .entries
            .iter()
            .map(|(&k, e)| (e.last_used, k))
            .collect();
        by_use.sort_unstable();
        let rank_of: BTreeMap<u64, u64> = by_use
            .into_iter()
            .enumerate()
            .map(|(rank, (_, k))| (k, rank as u64))
            .collect();
        self.entries
            .iter()
            .map(|(&k, e)| {
                let rank = rank_of.get(&k).copied().unwrap_or(0);
                (k, e.value, e.owner, e.stamp, e.level, rank)
            })
            .collect()
    }

    /// Outstanding tombstones, sorted by key, as `(key, owner, floor)`.
    pub fn tombstones(&self) -> Vec<(u64, NodeId, u64)> {
        self.tombstones
            .iter()
            .map(|(&k, &(owner, floor))| (k, owner, floor))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid_of(value: u64) -> u64 {
        ContentId::of(&value.to_le_bytes()).raw()
    }

    fn filled(cache: &mut NodeCache, key: u64, value: u64, stamp: u64, level: u32) -> FillOutcome {
        cache.fill(key, value, stamp, NodeId::new(1), cid_of(value), level)
    }

    #[test]
    fn disabled_cache_is_inert() {
        let mut c = NodeCache::new(CacheConfig::default());
        assert!(!c.enabled());
        assert_eq!(filled(&mut c, 1, 10, 0, 1), FillOutcome::Disabled);
        assert_eq!(c.lookup(1), None);
        c.invalidate(1, NodeId::new(1), 5);
        assert_eq!(c.tally(), CacheTally::default());
    }

    #[test]
    fn fill_then_hit_then_invalidate() {
        let mut c = NodeCache::new(CacheConfig::with_capacity(4));
        assert_eq!(filled(&mut c, 7, 70, 1, 2), FillOutcome::Accepted);
        assert_eq!(c.lookup(7), Some(70));
        assert_eq!(c.lookup(8), None);
        c.invalidate(7, NodeId::new(1), 2);
        assert_eq!(c.lookup(7), None);
        let t = c.tally();
        assert_eq!((t.hits, t.misses, t.fills, t.invalidations), (1, 2, 1, 1));
    }

    #[test]
    fn corrupt_fills_are_dropped() {
        let mut c = NodeCache::new(CacheConfig::with_capacity(4));
        let bad_cid = cid_of(999);
        assert_eq!(
            c.fill(7, 70, 1, NodeId::new(1), bad_cid, 1),
            FillOutcome::Corrupt
        );
        assert_eq!(c.lookup(7), None);
        assert_eq!(c.tally().corrupt_fills, 1);
    }

    #[test]
    fn tombstone_blocks_stale_fill_until_fresh_one_arrives() {
        let mut c = NodeCache::new(CacheConfig::with_capacity(4));
        c.invalidate(7, NodeId::new(1), 3);
        // A late fill of the overwritten version (stamp 2 < floor 3) must
        // not resurrect it.
        assert_eq!(filled(&mut c, 7, 70, 2, 1), FillOutcome::Stale);
        assert_eq!(c.lookup(7), None);
        // The post-overwrite version clears the tombstone.
        assert_eq!(filled(&mut c, 7, 71, 3, 1), FillOutcome::Accepted);
        assert_eq!(c.lookup(7), Some(71));
        assert!(c.tombstones().is_empty());
    }

    #[test]
    fn different_owner_fill_supersedes_tombstone_and_entry() {
        let mut c = NodeCache::new(CacheConfig::with_capacity(4));
        c.invalidate(7, NodeId::new(1), 9);
        // Responsibility moved: the new owner's stamps restart, and its
        // fills must not be judged against the old owner's floor.
        assert_eq!(
            c.fill(7, 77, 0, NodeId::new(2), cid_of(77), 1),
            FillOutcome::Accepted
        );
        assert_eq!(c.lookup(7), Some(77));
    }

    #[test]
    fn same_owner_downgrade_is_stale() {
        let mut c = NodeCache::new(CacheConfig::with_capacity(4));
        assert_eq!(filled(&mut c, 7, 71, 3, 1), FillOutcome::Accepted);
        assert_eq!(filled(&mut c, 7, 70, 2, 1), FillOutcome::Stale);
        assert_eq!(c.lookup(7), Some(71));
    }

    #[test]
    fn eviction_prefers_largest_level_then_lru() {
        let mut c = NodeCache::new(CacheConfig::with_capacity(2));
        assert_eq!(filled(&mut c, 1, 10, 0, 1), FillOutcome::Accepted);
        assert_eq!(filled(&mut c, 2, 20, 0, 3), FillOutcome::Accepted);
        // Key 2 has the deepest level; it goes first.
        assert_eq!(filled(&mut c, 3, 30, 0, 2), FillOutcome::Accepted);
        assert_eq!(c.lookup(2), None);
        assert!(c.lookup(1).is_some() && c.lookup(3).is_some());
        // Levels now tie at {1: level 1→ no; entries are 1(level 1), 3(level 2)}.
        // Insert another level-2 entry: key 3 is the deepest; between
        // equal-level victims the least recently used loses — touch 3 so
        // it survives over a colder equal-level peer.
        assert_eq!(filled(&mut c, 4, 40, 0, 2), FillOutcome::Accepted);
        assert_eq!(
            c.lookup(3),
            None,
            "deepest level (2) evicted before level 1"
        );
        assert_eq!(c.len(), 2);
        assert!(c.tally().evictions >= 2);
    }

    #[test]
    fn lru_breaks_level_ties() {
        let mut c = NodeCache::new(CacheConfig::with_capacity(2));
        assert_eq!(filled(&mut c, 1, 10, 0, 2), FillOutcome::Accepted);
        assert_eq!(filled(&mut c, 2, 20, 0, 2), FillOutcome::Accepted);
        // Touch key 1: key 2 becomes the LRU victim at the shared level.
        assert_eq!(c.lookup(1), Some(10));
        assert_eq!(filled(&mut c, 3, 30, 0, 2), FillOutcome::Accepted);
        assert_eq!(c.lookup(2), None);
        assert_eq!(c.lookup(1), Some(10));
    }

    #[test]
    fn refresh_does_not_evict() {
        let mut c = NodeCache::new(CacheConfig::with_capacity(2));
        assert_eq!(filled(&mut c, 1, 10, 1, 1), FillOutcome::Accepted);
        assert_eq!(filled(&mut c, 2, 20, 1, 1), FillOutcome::Accepted);
        // Refreshing an existing key at full capacity must not push out
        // its neighbor.
        assert_eq!(filled(&mut c, 1, 11, 2, 1), FillOutcome::Accepted);
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(1), Some(11));
        assert_eq!(c.lookup(2), Some(20));
        assert_eq!(c.tally().evictions, 0);
    }

    #[test]
    fn tombstones_stay_bounded() {
        let mut c = NodeCache::new(CacheConfig::with_capacity(2));
        for k in 0..2 * TOMBSTONE_CAP as u64 {
            c.invalidate(k, NodeId::new(1), 1);
        }
        assert_eq!(c.tombstones().len(), TOMBSTONE_CAP);
    }

    #[test]
    fn snapshot_ranks_by_recency_not_absolute_tick() {
        let mut c = NodeCache::new(CacheConfig::with_capacity(4));
        assert_eq!(filled(&mut c, 1, 10, 0, 1), FillOutcome::Accepted);
        assert_eq!(filled(&mut c, 2, 20, 0, 2), FillOutcome::Accepted);
        assert_eq!(c.lookup(1), Some(10));
        let snap = c.snapshot();
        assert_eq!(snap.len(), 2);
        // Key 2 is now the coldest (rank 0); key 1 was just touched.
        assert_eq!(snap[0], (1, 10, NodeId::new(1), 0, 1, 1));
        assert_eq!(snap[1], (2, 20, NodeId::new(1), 0, 2, 0));
    }
}
