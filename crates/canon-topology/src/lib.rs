//! A transit-stub internet topology model (paper §5.2).
//!
//! The paper evaluates physical-network properties on a 2040-router
//! GT-ITM graph: routers are grouped into *transit domains* of *transit
//! nodes*; each transit node carries several *stub domains* of *stub
//! nodes*. Link latencies are fixed per type — transit–transit 100 ms,
//! transit–stub 20 ms, stub–stub 5 ms — and a DHT node reaches its stub
//! router in 1 ms. GT-ITM itself is an old C tool, so this crate
//! reimplements the model: the paper only consumes (i) pairwise router
//! latencies and (ii) the induced five-level hierarchy (root / transit
//! domain / transit node / stub domain / stub node), both of which this
//! generator provides with the same latency scales.
//!
//! [`TransitStubTopology::generate`] builds the router graph and runs
//! all-pairs Dijkstra; [`attach`] places DHT nodes uniformly on stub
//! routers and yields the hierarchy, placement and a node-to-node latency
//! oracle used by the Figure 6–9 experiments.
//!
//! # Example
//!
//! ```
//! use canon_id::rng::Seed;
//! use canon_topology::{attach, LatencyModel, TopologyParams, TransitStubTopology};
//!
//! let topo = TransitStubTopology::generate(
//!     TopologyParams::small(), LatencyModel::default(), Seed(1));
//! let att = attach(topo, 50, Seed(2));
//! assert_eq!(att.hierarchy().levels(), 5);
//! let ids = att.placement().ids();
//! assert!(att.latency(ids[0], ids[1]) >= 2.0); // two 1 ms access links
//! ```

#![forbid(unsafe_code)]

pub mod euclidean;

use canon_hierarchy::{DomainId, Hierarchy, Placement};
use canon_id::{
    rng::{random_ids, Seed},
    NodeId,
};
use rand::Rng;
use std::collections::HashMap;

/// Latency constants of the model, in milliseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Between transit nodes (intra- or inter-domain).
    pub transit_transit: f64,
    /// Between a transit node and a stub node attached to it.
    pub transit_stub: f64,
    /// Between stub nodes within one stub domain.
    pub stub_stub: f64,
    /// From a DHT end node to its stub router.
    pub node_stub: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            transit_transit: 100.0,
            transit_stub: 20.0,
            stub_stub: 5.0,
            node_stub: 1.0,
        }
    }
}

/// Shape parameters of the transit-stub graph.
///
/// The defaults reproduce the paper's scale: `4 × 10 = 40` transit nodes,
/// each with `5` stub domains of `10` nodes → `40 + 2000 = 2040` routers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopologyParams {
    /// Number of transit domains.
    pub transit_domains: usize,
    /// Transit nodes per transit domain.
    pub transit_nodes: usize,
    /// Stub domains hanging off each transit node.
    pub stub_domains: usize,
    /// Stub nodes per stub domain.
    pub stub_nodes: usize,
}

impl Default for TopologyParams {
    fn default() -> Self {
        TopologyParams {
            transit_domains: 4,
            transit_nodes: 10,
            stub_domains: 5,
            stub_nodes: 10,
        }
    }
}

impl TopologyParams {
    /// Total router count.
    pub fn router_count(&self) -> usize {
        let transit = self.transit_domains * self.transit_nodes;
        transit + transit * self.stub_domains * self.stub_nodes
    }

    /// A small topology for fast tests (2 × 3 transit, 2 × 4 stub = 54
    /// routers).
    pub fn small() -> Self {
        TopologyParams {
            transit_domains: 2,
            transit_nodes: 3,
            stub_domains: 2,
            stub_nodes: 4,
        }
    }
}

/// A router index within one topology.
pub type RouterId = usize;

/// The generated router graph with its all-pairs latency matrix.
#[derive(Clone, Debug)]
pub struct TransitStubTopology {
    params: TopologyParams,
    model: LatencyModel,
    /// Distance matrix, row-major; `f32` halves the footprint at 2040².
    dist: Vec<f32>,
    n_routers: usize,
    stub_routers: Vec<RouterId>,
    /// For each stub router: (transit domain, transit node within domain,
    /// stub domain within transit node).
    stub_coords: Vec<(usize, usize, usize)>,
}

impl TransitStubTopology {
    /// Generates a topology and computes all-pairs shortest-path latencies.
    ///
    /// Each transit domain is a ring of transit nodes plus random chords;
    /// every pair of transit domains is joined by one random edge; each
    /// stub domain is a ring of stub nodes plus random chords, attached to
    /// its transit node through one random member.
    ///
    /// # Panics
    ///
    /// Panics if any shape parameter is zero.
    pub fn generate(params: TopologyParams, model: LatencyModel, seed: Seed) -> Self {
        assert!(
            params.transit_domains > 0
                && params.transit_nodes > 0
                && params.stub_domains > 0
                && params.stub_nodes > 0,
            "all topology parameters must be positive"
        );
        let mut rng = seed.derive("topology").rng();
        let n_transit = params.transit_domains * params.transit_nodes;
        let n = params.router_count();
        let mut adj: Vec<Vec<(RouterId, f32)>> = vec![Vec::new(); n];
        let add_edge = |adj: &mut Vec<Vec<(RouterId, f32)>>, a: RouterId, b: RouterId, w: f64| {
            if a != b && !adj[a].iter().any(|&(x, _)| x == b) {
                adj[a].push((b, w as f32));
                adj[b].push((a, w as f32));
            }
        };

        // Transit domains: ring + one random chord per node.
        let transit_of = |dom: usize, i: usize| dom * params.transit_nodes + i;
        for dom in 0..params.transit_domains {
            let t = params.transit_nodes;
            for i in 0..t {
                if t > 1 {
                    add_edge(
                        &mut adj,
                        transit_of(dom, i),
                        transit_of(dom, (i + 1) % t),
                        model.transit_transit,
                    );
                }
                if t > 2 && rng.gen_bool(0.5) {
                    let j = rng.gen_range(0..t);
                    add_edge(
                        &mut adj,
                        transit_of(dom, i),
                        transit_of(dom, j),
                        model.transit_transit,
                    );
                }
            }
        }
        // Inter-domain transit edges: one per ordered pair of domains.
        for a in 0..params.transit_domains {
            for b in (a + 1)..params.transit_domains {
                let i = rng.gen_range(0..params.transit_nodes);
                let j = rng.gen_range(0..params.transit_nodes);
                add_edge(
                    &mut adj,
                    transit_of(a, i),
                    transit_of(b, j),
                    model.transit_transit,
                );
            }
        }

        // Stub domains.
        let mut stub_routers = Vec::with_capacity(n - n_transit);
        let mut stub_coords = Vec::with_capacity(n - n_transit);
        let mut next = n_transit;
        for dom in 0..params.transit_domains {
            for tn in 0..params.transit_nodes {
                for sd in 0..params.stub_domains {
                    let base = next;
                    let s = params.stub_nodes;
                    next += s;
                    for i in 0..s {
                        stub_routers.push(base + i);
                        stub_coords.push((dom, tn, sd));
                        if s > 1 {
                            add_edge(&mut adj, base + i, base + (i + 1) % s, model.stub_stub);
                        }
                        if s > 2 && rng.gen_bool(0.3) {
                            let j = rng.gen_range(0..s);
                            add_edge(&mut adj, base + i, base + j, model.stub_stub);
                        }
                    }
                    // Attach the stub domain to its transit node.
                    let gw = base + rng.gen_range(0..s);
                    add_edge(&mut adj, gw, transit_of(dom, tn), model.transit_stub);
                }
            }
        }

        // All-pairs Dijkstra.
        let mut dist = vec![f32::INFINITY; n * n];
        let mut heap = std::collections::BinaryHeap::new();
        for src in 0..n {
            let row = &mut dist[src * n..(src + 1) * n];
            row[src] = 0.0;
            heap.clear();
            heap.push(std::cmp::Reverse((ordered(0.0), src)));
            while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
                let d = f32::from_bits(d ^ SIGN_FIX);
                if d > row[u] {
                    continue;
                }
                for &(v, w) in &adj[u] {
                    let nd = d + w;
                    if nd < row[v] {
                        row[v] = nd;
                        heap.push(std::cmp::Reverse((ordered(nd), v)));
                    }
                }
            }
        }

        let topo = TransitStubTopology {
            params,
            model,
            dist,
            n_routers: n,
            stub_routers,
            stub_coords,
        };
        debug_assert!(topo.is_connected(), "generated topology must be connected");
        topo
    }

    /// Shape parameters used to generate this topology.
    pub fn params(&self) -> TopologyParams {
        self.params
    }

    /// Latency constants of this topology.
    pub fn model(&self) -> LatencyModel {
        self.model
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.n_routers
    }

    /// The stub routers (where DHT nodes may attach).
    pub fn stub_routers(&self) -> &[RouterId] {
        &self.stub_routers
    }

    /// For the `i`-th stub router: its (transit domain, transit node,
    /// stub domain) coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn stub_coords(&self, i: usize) -> (usize, usize, usize) {
        self.stub_coords[i]
    }

    /// Shortest-path latency between two routers, in ms.
    ///
    /// # Panics
    ///
    /// Panics if either router id is out of range.
    pub fn router_latency(&self, a: RouterId, b: RouterId) -> f64 {
        assert!(
            a < self.n_routers && b < self.n_routers,
            "router id out of range"
        );
        f64::from(self.dist[a * self.n_routers + b])
    }

    fn is_connected(&self) -> bool {
        (0..self.n_routers).all(|i| self.dist[i].is_finite())
    }
}

const SIGN_FIX: u32 = 0x8000_0000;

/// Maps a non-negative f32 to a totally ordered u32 key for the heap.
fn ordered(x: f32) -> u32 {
    x.to_bits() ^ SIGN_FIX
}

/// A DHT population attached to a transit-stub topology: the induced
/// five-level hierarchy, the node placement, and the latency oracle.
#[derive(Clone, Debug)]
pub struct Attachment {
    topology: TransitStubTopology,
    hierarchy: Hierarchy,
    placement: Placement,
    stub_router_of: Vec<RouterId>,
    // audit: membership-only
    router_of_id: HashMap<NodeId, RouterId>,
}

/// Attaches `n` DHT nodes to uniformly random stub routers of `topology`.
///
/// The returned [`Attachment`] owns the topology and exposes:
/// * the induced hierarchy — root (depth 0), transit domains (1), transit
///   nodes (2), stub domains (3), stub routers (4, the leaves);
/// * a [`Placement`] assigning each node to its stub router's leaf domain;
/// * node-to-node latencies: `1 ms + router shortest path + 1 ms`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn attach(topology: TransitStubTopology, n: usize, seed: Seed) -> Attachment {
    assert!(n > 0, "cannot attach zero nodes");
    let mut h = Hierarchy::new();
    let p = topology.params();
    // leaf_domains[i] = leaf DomainId for stub position i (in stub_routers order).
    let mut leaf_domains: Vec<DomainId> = Vec::with_capacity(topology.stub_routers().len());
    for dom in 0..p.transit_domains {
        let d1 = h.add_domain(h.root(), format!("transit{dom}"));
        for tn in 0..p.transit_nodes {
            let d2 = h.add_domain(d1, format!("tnode{tn}"));
            for sd in 0..p.stub_domains {
                let d3 = h.add_domain(d2, format!("stub{sd}"));
                for sn in 0..p.stub_nodes {
                    leaf_domains.push(h.add_domain(d3, format!("r{sn}")));
                }
            }
        }
    }
    debug_assert_eq!(leaf_domains.len(), topology.stub_routers().len());

    let ids = random_ids(seed.derive("attach-ids"), n);
    let mut rng = seed.derive("attach-placement").rng();
    let mut pairs = Vec::with_capacity(n);
    let mut stub_router_of = Vec::with_capacity(n);
    // audit: membership-only
    let mut router_of_id = HashMap::with_capacity(n);
    for &id in &ids {
        let pos = rng.gen_range(0..topology.stub_routers().len());
        pairs.push((id, leaf_domains[pos]));
        let router = topology.stub_routers()[pos];
        stub_router_of.push(router);
        router_of_id.insert(id, router);
    }
    let placement = Placement::from_pairs(&h, pairs);
    Attachment {
        topology,
        hierarchy: h,
        placement,
        stub_router_of,
        router_of_id,
    }
}

impl Attachment {
    /// The underlying topology.
    pub fn topology(&self) -> &TransitStubTopology {
        &self.topology
    }

    /// The induced five-level hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The node placement over the hierarchy's leaves.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The stub router of the `i`-th placed node.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn stub_router_of_index(&self, i: usize) -> RouterId {
        self.stub_router_of[i]
    }

    /// End-to-end latency between two DHT nodes, in ms: 0 for the same
    /// node, otherwise `1 + shortest-path + 1` (2 ms for two nodes on one
    /// stub router).
    ///
    /// # Panics
    ///
    /// Panics if either identifier is not attached.
    pub fn latency(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            return 0.0;
        }
        let ra = self.router_of_id[&a];
        let rb = self.router_of_id[&b];
        self.topology.model().node_stub * 2.0 + self.topology.router_latency(ra, rb)
    }

    /// Mean node-to-node latency over `samples` random pairs — the
    /// normalizer for the paper's *stretch* metric (Figure 6).
    pub fn mean_direct_latency(&self, samples: usize, seed: Seed) -> f64 {
        let ids = self.placement.ids();
        let mut rng = seed.rng();
        let mut total = 0.0;
        let mut count = 0usize;
        for _ in 0..samples {
            let a = ids[rng.gen_range(0..ids.len())];
            let b = ids[rng.gen_range(0..ids.len())];
            if a == b {
                continue;
            }
            total += self.latency(a, b);
            count += 1;
        }
        total / count.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TransitStubTopology {
        TransitStubTopology::generate(TopologyParams::small(), LatencyModel::default(), Seed(1))
    }

    #[test]
    fn default_params_match_paper_scale() {
        assert_eq!(TopologyParams::default().router_count(), 2040);
    }

    #[test]
    fn topology_is_connected_and_symmetric() {
        let t = small();
        let n = t.router_count();
        for a in (0..n).step_by(7) {
            for b in (0..n).step_by(11) {
                let ab = t.router_latency(a, b);
                assert!(ab.is_finite(), "unreachable pair {a},{b}");
                assert_eq!(ab, t.router_latency(b, a));
            }
        }
        assert_eq!(t.router_latency(3, 3), 0.0);
    }

    #[test]
    fn intra_stub_latency_is_cheap() {
        let t = small();
        // Two routers in the same stub domain: multiples of 5ms, no transit.
        let (a, b) = (t.stub_routers()[0], t.stub_routers()[1]);
        let lat = t.router_latency(a, b);
        assert!((5.0..=5.0 * 4.0).contains(&lat), "intra-stub latency {lat}");
    }

    #[test]
    fn cross_domain_latency_includes_transit() {
        let t = small();
        let first = t.stub_routers()[0];
        let last = *t.stub_routers().last().unwrap();
        // Different transit domains: 2 transit-stub hops + >=1 transit hop.
        let lat = t.router_latency(first, last);
        assert!(lat >= 2.0 * 20.0 + 100.0, "cross-domain latency {lat}");
    }

    #[test]
    fn generation_is_reproducible() {
        let a = small();
        let b = small();
        assert_eq!(a.router_latency(0, 53), b.router_latency(0, 53));
        let c = TransitStubTopology::generate(
            TopologyParams::small(),
            LatencyModel::default(),
            Seed(2),
        );
        // Different seeds: different wiring (latency between far routers
        // almost surely differs). Compare a row fingerprint.
        let fa: f64 = (0..a.router_count()).map(|i| a.router_latency(0, i)).sum();
        let fc: f64 = (0..c.router_count()).map(|i| c.router_latency(0, i)).sum();
        assert_ne!(fa, fc);
    }

    #[test]
    fn attachment_builds_five_level_hierarchy() {
        let att = attach(small(), 100, Seed(3));
        let h = att.hierarchy();
        assert_eq!(h.levels(), 5);
        let p = TopologyParams::small();
        assert_eq!(h.domains_at_depth(1).len(), p.transit_domains);
        assert_eq!(
            h.domains_at_depth(2).len(),
            p.transit_domains * p.transit_nodes
        );
        assert_eq!(
            h.domains_at_depth(4).len(),
            p.transit_domains * p.transit_nodes * p.stub_domains * p.stub_nodes
        );
        assert_eq!(att.placement().len(), 100);
    }

    #[test]
    fn node_latency_adds_access_links() {
        let att = attach(small(), 50, Seed(4));
        let ids = att.placement().ids();
        for i in 1..10 {
            let lat = att.latency(ids[0], ids[i]);
            assert!(lat >= 2.0, "latency {lat} below access cost");
        }
        assert_eq!(att.latency(ids[0], ids[0]), 0.0);
    }

    #[test]
    fn same_stub_nodes_cost_two_ms() {
        // With many nodes on few routers, some pair shares a stub router.
        let att = attach(small(), 300, Seed(5));
        let ids = att.placement().ids();
        let mut found = false;
        'outer: for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                if att.stub_router_of_index(i) == att.stub_router_of_index(j) {
                    assert_eq!(att.latency(ids[i], ids[j]), 2.0);
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "expected at least one co-located pair");
    }

    #[test]
    fn mean_direct_latency_is_sane() {
        let att = attach(small(), 200, Seed(6));
        let m = att.mean_direct_latency(500, Seed(7));
        // Bounded by access (2) .. worst path (few hundred ms).
        assert!(m > 2.0 && m < 500.0, "mean direct latency {m}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_params_rejected() {
        TransitStubTopology::generate(
            TopologyParams {
                transit_domains: 0,
                ..TopologyParams::small()
            },
            LatencyModel::default(),
            Seed(0),
        );
    }
}
