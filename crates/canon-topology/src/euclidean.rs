//! A clustered Euclidean latency model — an alternative physical substrate.
//!
//! The paper evaluates on a transit-stub graph; DHT papers of the same era
//! often used Euclidean embeddings instead. This module places nodes in
//! Gaussian clusters on a plane (latency = Euclidean distance plus a fixed
//! access cost) and induces the natural two-level hierarchy (root →
//! cluster). Experiments that hold on both substrates — Crescendo's
//! constant stretch, locality collapse — are evidence the paper's claims
//! are not artifacts of one topology generator.

use canon_hierarchy::{Hierarchy, Placement};
use canon_id::{
    rng::{random_ids, Seed},
    NodeId,
};
use rand::Rng;
use std::collections::HashMap;

/// Shape parameters of the clustered plane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EuclideanParams {
    /// Number of clusters (induced depth-1 domains).
    pub clusters: usize,
    /// Side length of the square the cluster centers are drawn from, in
    /// milliseconds (latency = distance).
    pub world_size: f64,
    /// Standard deviation of node positions around their cluster center.
    pub cluster_spread: f64,
    /// Fixed per-message access cost added to every latency.
    pub access_cost: f64,
}

impl Default for EuclideanParams {
    fn default() -> Self {
        EuclideanParams {
            clusters: 16,
            world_size: 300.0,
            cluster_spread: 5.0,
            access_cost: 2.0,
        }
    }
}

/// A population embedded in the clustered plane.
#[derive(Clone, Debug)]
pub struct EuclideanWorld {
    params: EuclideanParams,
    hierarchy: Hierarchy,
    placement: Placement,
    // audit: membership-only
    position_of: HashMap<NodeId, (f64, f64)>,
}

impl EuclideanWorld {
    /// Places `n` nodes in Gaussian clusters and builds the induced
    /// two-level hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `params.clusters == 0`.
    pub fn generate(params: EuclideanParams, n: usize, seed: Seed) -> Self {
        assert!(n > 0, "a world needs at least one node");
        assert!(params.clusters > 0, "need at least one cluster");
        let mut rng = seed.derive("euclidean").rng();
        let centers: Vec<(f64, f64)> = (0..params.clusters)
            .map(|_| {
                (
                    rng.gen::<f64>() * params.world_size,
                    rng.gen::<f64>() * params.world_size,
                )
            })
            .collect();

        let mut h = Hierarchy::new();
        let leaves: Vec<_> = (0..params.clusters)
            .map(|c| h.add_domain(h.root(), format!("cluster{c}")))
            .collect();

        let ids = random_ids(seed.derive("ids"), n);
        // audit: membership-only
        let mut position_of = HashMap::with_capacity(n);
        let mut pairs = Vec::with_capacity(n);
        for &id in &ids {
            let c = rng.gen_range(0..params.clusters);
            let (cx, cy) = centers[c];
            // Box-Muller for a Gaussian offset.
            let (u1, u2): (f64, f64) = (rng.gen_range(f64::MIN_POSITIVE..1.0), rng.gen());
            let r = params.cluster_spread * (-2.0 * u1.ln()).sqrt();
            let (dx, dy) = (
                r * (std::f64::consts::TAU * u2).cos(),
                r * (std::f64::consts::TAU * u2).sin(),
            );
            position_of.insert(id, (cx + dx, cy + dy));
            pairs.push((id, leaves[c]));
        }
        let placement = Placement::from_pairs(&h, pairs);
        EuclideanWorld {
            params,
            hierarchy: h,
            placement,
            position_of,
        }
    }

    /// The induced two-level hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The node placement over cluster domains.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The position of a node on the plane.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not placed.
    pub fn position(&self, id: NodeId) -> (f64, f64) {
        self.position_of[&id]
    }

    /// End-to-end latency between two nodes: Euclidean distance plus the
    /// access cost (0 for a node to itself).
    ///
    /// # Panics
    ///
    /// Panics if either node is not placed.
    pub fn latency(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            return 0.0;
        }
        let (ax, ay) = self.position_of[&a];
        let (bx, by) = self.position_of[&b];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt() + self.params.access_cost
    }

    /// Mean latency over `samples` random distinct pairs (the stretch
    /// normalizer).
    pub fn mean_direct_latency(&self, samples: usize, seed: Seed) -> f64 {
        let ids = self.placement.ids();
        let mut rng = seed.rng();
        let mut total = 0.0;
        let mut count = 0usize;
        while count < samples {
            let a = ids[rng.gen_range(0..ids.len())];
            let b = ids[rng.gen_range(0..ids.len())];
            if a == b {
                continue;
            }
            total += self.latency(a, b);
            count += 1;
        }
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_induces_two_level_hierarchy() {
        let w = EuclideanWorld::generate(EuclideanParams::default(), 200, Seed(1));
        assert_eq!(w.hierarchy().levels(), 2);
        assert_eq!(w.hierarchy().leaves().len(), 16);
        assert_eq!(w.placement().len(), 200);
    }

    #[test]
    fn latency_is_a_metric_with_access_floor() {
        let w = EuclideanWorld::generate(EuclideanParams::default(), 100, Seed(2));
        let ids = w.placement().ids();
        for i in 1..20 {
            let l = w.latency(ids[0], ids[i]);
            assert!(l >= 2.0, "latency {l} below access cost");
            assert!((l - w.latency(ids[i], ids[0])).abs() < 1e-12, "asymmetric");
        }
        assert_eq!(w.latency(ids[0], ids[0]), 0.0);
        // Triangle inequality (Euclidean + constant access cost per leg).
        let (a, b, c) = (ids[0], ids[1], ids[2]);
        assert!(w.latency(a, c) <= w.latency(a, b) + w.latency(b, c) + 1e-9);
    }

    #[test]
    fn intra_cluster_latency_is_small() {
        let w = EuclideanWorld::generate(EuclideanParams::default(), 400, Seed(3));
        let h = w.hierarchy().clone();
        let leaf = h.leaves()[0];
        let members: Vec<NodeId> = w
            .placement()
            .iter()
            .filter(|(_, l)| *l == leaf)
            .map(|(id, _)| id)
            .collect();
        if members.len() >= 2 {
            let l = w.latency(members[0], members[1]);
            // Two Gaussian(5.0) offsets: overwhelmingly below 50 ms; world
            // diameter is ~424 ms.
            assert!(l < 50.0, "intra-cluster latency {l}");
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let a = EuclideanWorld::generate(EuclideanParams::default(), 50, Seed(4));
        let b = EuclideanWorld::generate(EuclideanParams::default(), 50, Seed(4));
        let ids = a.placement().ids();
        assert_eq!(a.position(ids[7]), b.position(ids[7]));
    }

    #[test]
    fn mean_direct_latency_reflects_world_scale() {
        let w = EuclideanWorld::generate(EuclideanParams::default(), 300, Seed(5));
        let m = w.mean_direct_latency(2000, Seed(6));
        // Mean distance between uniform points in a 300x300 square ≈ 156.
        assert!(m > 50.0 && m < 300.0, "mean latency {m}");
    }
}
