//! Property tests for the transit-stub topology: metric laws and
//! attachment consistency over random shapes.

use canon_id::rng::Seed;
use canon_topology::{attach, LatencyModel, TopologyParams, TransitStubTopology};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = TopologyParams> {
    (1usize..=3, 1usize..=4, 1usize..=3, 1usize..=5).prop_map(
        |(transit_domains, transit_nodes, stub_domains, stub_nodes)| TopologyParams {
            transit_domains,
            transit_nodes,
            stub_domains,
            stub_nodes,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shortest-path latencies form a metric: symmetric, zero on the
    /// diagonal, triangle inequality.
    #[test]
    fn latencies_form_a_metric(params in arb_params(), seed in any::<u64>()) {
        let t = TransitStubTopology::generate(params, LatencyModel::default(), Seed(seed));
        let n = t.router_count();
        prop_assert_eq!(n, params.router_count());
        let step = (n / 6).max(1);
        let probes: Vec<usize> = (0..n).step_by(step).collect();
        for &a in &probes {
            prop_assert_eq!(t.router_latency(a, a), 0.0);
            for &b in &probes {
                let ab = t.router_latency(a, b);
                prop_assert!(ab.is_finite(), "disconnected pair");
                prop_assert_eq!(ab, t.router_latency(b, a));
                for &c in &probes {
                    prop_assert!(
                        t.router_latency(a, c) <= ab + t.router_latency(b, c) + 1e-6,
                        "triangle violated"
                    );
                }
            }
        }
    }

    /// Attachment yields a 5-level hierarchy whose leaf count equals the
    /// number of stub routers, with consistent node latencies.
    #[test]
    fn attachment_is_consistent(params in arb_params(), n in 2usize..80, seed in any::<u64>()) {
        let t = TransitStubTopology::generate(params, LatencyModel::default(), Seed(seed));
        let stub_count = t.stub_routers().len();
        let att = attach(t, n, Seed(seed ^ 1));
        prop_assert_eq!(att.hierarchy().levels(), 5);
        prop_assert_eq!(att.hierarchy().leaves().len(), stub_count);
        let ids = att.placement().ids().to_vec();
        for i in 1..ids.len().min(10) {
            let l = att.latency(ids[0], ids[i]);
            prop_assert!(l >= 2.0, "latency {l} below two access links");
            prop_assert_eq!(l, att.latency(ids[i], ids[0]));
        }
        prop_assert_eq!(att.latency(ids[0], ids[0]), 0.0);
    }
}
