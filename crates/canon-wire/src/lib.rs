//! Deterministic binary wire codec for the Canon node runtime.
//!
//! This crate is the serialization boundary the ROADMAP's "wire-format RPC"
//! item asks for: a hand-rolled, dependency-free, fixed-layout binary codec
//! that canon-node's message vocabulary encodes through before anything
//! resembling a socket ever sees it. Hand-rolled rather than MiniCBOR or
//! serde because the build environment is offline and, more importantly,
//! because the workspace's determinism story demands byte-for-byte
//! reproducible output: no schema negotiation, no map-ordering freedom, no
//! float canonicalization questions — every value has exactly one encoding.
//!
//! # Layout primitives
//!
//! * **fixed-width integers** — `u64` little-endian, 8 bytes. Used for
//!   identifier-space points (node ids, keys, stored values): those are
//!   uniform 64-bit hashes, so a varint would *lengthen* them.
//! * **varints** — LEB128, 1–10 bytes, value bits little-endian in groups
//!   of 7 with the high bit as continuation. Used for counters (sequence
//!   numbers, ticks, hop counts, lengths) which are small in practice.
//! * **length-prefixed byte slices** — varint length + raw bytes. The
//!   decoder returns a borrowed subslice (zero-copy).
//! * **one-byte variant tags** — every `enum` encodes an explicit tag
//!   byte; decoders reject unknown tags with [`WireError::BadTag`].
//!
//! # Totality
//!
//! Every decode is **total**: arbitrary input bytes produce `Ok` or a
//! [`WireError`], never a panic. The three failure modes are truncation
//! (ran out of bytes), an unknown variant tag, and trailing garbage after
//! a complete value ([`from_bytes`] enforces full consumption).
//!
//! # Determinism
//!
//! Encoding is a pure function of the value: [`to_bytes`] called twice on
//! equal values yields identical byte strings, and
//! `to_bytes(from_bytes(b)) == b` for every `b` that decodes at all —
//! there are no redundant encodings. The round-trip property tests in
//! canon-node pin both directions for the whole message vocabulary.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use canon_id::NodeId;

/// Why a decode failed. Decoding is total: every input produces a value
/// or one of these, never a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    Truncated,
    /// An enum tag byte (or an overlong varint) had no valid meaning;
    /// `ty` names the type being decoded.
    BadTag {
        /// The type whose decoder rejected the byte.
        ty: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A complete value was decoded but input bytes remained.
    TrailingBytes,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::BadTag { ty, tag } => write!(f, "bad tag {tag:#04x} for {ty}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after value"),
        }
    }
}

impl std::error::Error for WireError {}

/// Serializes values into a byte buffer. Append-only; the buffer may
/// already hold earlier data (frames concatenate several values).
#[derive(Debug)]
pub struct Encoder<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> Encoder<'a> {
    /// An encoder appending to `buf`.
    pub fn new(buf: &'a mut Vec<u8>) -> Encoder<'a> {
        Encoder { buf }
    }

    /// Bytes written so far (including any the buffer held before this
    /// encoder was created) — callers diff this to size sub-encodings.
    pub fn written(&self) -> usize {
        self.buf.len()
    }

    /// Appends one raw byte — the variant-tag primitive.
    pub fn tag(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Appends a `u64` as 8 little-endian bytes (identifier-space points:
    /// node ids, keys, values — uniform hashes that varints would bloat).
    pub fn u64_fixed(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` as a LEB128 varint (1–10 bytes; counters and
    /// lengths, which are small in practice).
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(b);
                return;
            }
            self.buf.push(b | 0x80);
        }
    }

    /// Appends a length-prefixed byte slice (varint length + raw bytes).
    pub fn bytes(&mut self, b: &[u8]) {
        self.varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Appends a `bool` as a 0/1 tag byte.
    pub fn bool(&mut self, v: bool) {
        self.tag(u8::from(v));
    }

    /// Encodes a value through its [`WireEncode`] impl.
    pub fn encode<T: WireEncode + ?Sized>(&mut self, v: &T) {
        v.encode(self);
    }
}

/// Deserializes values from a byte slice. Zero-copy: [`Decoder::bytes`]
/// returns subslices of the input rather than owned buffers.
#[derive(Clone, Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder reading from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one raw byte — the variant-tag primitive.
    pub fn tag(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a `u64` from 8 little-endian bytes.
    pub fn u64_fixed(&mut self) -> Result<u64, WireError> {
        let end = self.pos.checked_add(8).ok_or(WireError::Truncated)?;
        let chunk = self.buf.get(self.pos..end).ok_or(WireError::Truncated)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(chunk);
        self.pos = end;
        Ok(u64::from_le_bytes(raw))
    }

    /// Reads a LEB128 varint. Overlong encodings (an 11th continuation
    /// byte, or bits beyond the 64th) are rejected as [`WireError::BadTag`]
    /// so every value has exactly one encoding.
    pub fn varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.tag()?;
            let bits = u64::from(b & 0x7f);
            // The 10th byte (shift 63) may only carry the final bit.
            if shift == 63 && bits > 1 {
                return Err(WireError::BadTag {
                    ty: "varint",
                    tag: b,
                });
            }
            v |= bits << shift;
            if b & 0x80 == 0 {
                // Reject non-canonical zero continuation groups ("0x80 0x00"
                // style padding) so encodings are unique.
                if b == 0 && shift != 0 {
                    return Err(WireError::BadTag {
                        ty: "varint",
                        tag: b,
                    });
                }
                return Ok(v);
            }
        }
        Err(WireError::BadTag {
            ty: "varint",
            tag: 0x80,
        })
    }

    /// Reads a varint, requiring it to fit a `u32`.
    pub fn varint_u32(&mut self) -> Result<u32, WireError> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| WireError::BadTag {
            ty: "u32",
            tag: 0xff,
        })
    }

    /// Reads a length-prefixed byte slice, borrowing from the input.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.varint()?;
        let len = usize::try_from(len).map_err(|_| WireError::Truncated)?;
        if len > self.remaining() {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Reads a `bool` from a 0/1 tag byte.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.tag()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag { ty: "bool", tag: t }),
        }
    }

    /// Decodes a value through its [`WireDecode`] impl.
    pub fn decode<T: WireDecode>(&mut self) -> Result<T, WireError> {
        T::decode(self)
    }

    /// Asserts the input is fully consumed ([`WireError::TrailingBytes`]
    /// otherwise).
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

/// Deterministic serialization into an [`Encoder`].
pub trait WireEncode {
    /// Appends this value's unique encoding.
    fn encode(&self, e: &mut Encoder<'_>);
}

/// Total deserialization from a [`Decoder`]: every input yields `Ok` or a
/// [`WireError`], never a panic.
pub trait WireDecode: Sized {
    /// Reads one value.
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError>;
}

/// Encodes a value into a fresh buffer.
pub fn to_bytes<T: WireEncode + ?Sized>(v: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    v.encode(&mut Encoder::new(&mut buf));
    buf
}

/// Decodes exactly one value, rejecting trailing bytes.
pub fn from_bytes<T: WireDecode>(b: &[u8]) -> Result<T, WireError> {
    let mut d = Decoder::new(b);
    let v = T::decode(&mut d)?;
    d.finish()?;
    Ok(v)
}

/// The encoded length of `v` as a LEB128 varint, without encoding.
pub fn varint_len(v: u64) -> usize {
    // Bit width 0 (v == 0) still takes one byte.
    (64 - v.leading_zeros()).max(1).div_ceil(7) as usize
}

impl WireEncode for u8 {
    fn encode(&self, e: &mut Encoder<'_>) {
        e.tag(*self);
    }
}

impl WireDecode for u8 {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        d.tag()
    }
}

impl WireEncode for u32 {
    fn encode(&self, e: &mut Encoder<'_>) {
        e.varint(u64::from(*self));
    }
}

impl WireDecode for u32 {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        d.varint_u32()
    }
}

impl WireEncode for u64 {
    fn encode(&self, e: &mut Encoder<'_>) {
        e.varint(*self);
    }
}

impl WireDecode for u64 {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        d.varint()
    }
}

impl WireEncode for bool {
    fn encode(&self, e: &mut Encoder<'_>) {
        e.bool(*self);
    }
}

impl WireDecode for bool {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        d.bool()
    }
}

/// Node identifiers are identifier-space points: fixed 8-byte LE (a varint
/// would average 9.2 bytes on uniform hashes).
impl WireEncode for NodeId {
    fn encode(&self, e: &mut Encoder<'_>) {
        e.u64_fixed(self.raw());
    }
}

impl WireDecode for NodeId {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(NodeId::new(d.u64_fixed()?))
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, e: &mut Encoder<'_>) {
        match self {
            None => e.tag(0),
            Some(v) => {
                e.tag(1);
                v.encode(e);
            }
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        match d.tag()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(d)?)),
            t => Err(WireError::BadTag {
                ty: "Option",
                tag: t,
            }),
        }
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, e: &mut Encoder<'_>) {
        e.varint(self.len() as u64);
        for item in self {
            item.encode(e);
        }
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let len = d.varint()?;
        // Every element consumes at least one byte, so a claimed length
        // beyond the remaining input is truncation — checked *before*
        // allocating, so adversarial lengths cannot balloon memory.
        let len = usize::try_from(len).map_err(|_| WireError::Truncated)?;
        if len > d.remaining() {
            return Err(WireError::Truncated);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(d)?);
        }
        Ok(out)
    }
}

impl<A: WireEncode, B: WireEncode> WireEncode for (A, B) {
    fn encode(&self, e: &mut Encoder<'_>) {
        self.0.encode(e);
        self.1.encode(e);
    }
}

impl<A: WireDecode, B: WireDecode> WireDecode for (A, B) {
    fn decode(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok((A::decode(d)?, B::decode(d)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        let back: T = from_bytes(&bytes).expect("decode");
        assert_eq!(back, v);
        assert_eq!(to_bytes(&back), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn primitives_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX, u64::MAX - 1] {
            roundtrip(v);
        }
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u32::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(NodeId::new(0xdead_beef_cafe_f00d));
        roundtrip(Option::<u64>::None);
        roundtrip(Some(42u64));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip((NodeId::new(7), 99u64));
    }

    #[test]
    fn varint_layout_is_leb128() {
        assert_eq!(to_bytes(&0u64), [0x00]);
        assert_eq!(to_bytes(&127u64), [0x7f]);
        assert_eq!(to_bytes(&128u64), [0x80, 0x01]);
        assert_eq!(to_bytes(&300u64), [0xac, 0x02]);
        assert_eq!(to_bytes(&u64::MAX).len(), 10);
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            assert_eq!(varint_len(v), to_bytes(&v).len(), "varint_len({v})");
        }
    }

    #[test]
    fn fixed_u64_is_little_endian() {
        let mut buf = Vec::new();
        Encoder::new(&mut buf).u64_fixed(0x0102_0304_0506_0708);
        assert_eq!(buf, [8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(Decoder::new(&buf).u64_fixed(), Ok(0x0102_0304_0506_0708u64));
    }

    #[test]
    fn truncated_inputs_error_not_panic() {
        let full = to_bytes(&(NodeId::new(5), u64::MAX));
        for cut in 0..full.len() {
            let r: Result<(NodeId, u64), _> = from_bytes(&full[..cut]);
            assert_eq!(r, Err(WireError::Truncated), "cut at {cut}");
        }
        assert_eq!(Decoder::new(&[]).tag(), Err(WireError::Truncated));
        assert_eq!(
            Decoder::new(&[1, 2, 3]).u64_fixed(),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert_eq!(
            from_bytes::<bool>(&[2]),
            Err(WireError::BadTag { ty: "bool", tag: 2 })
        );
        assert_eq!(
            from_bytes::<Option<u64>>(&[9]),
            Err(WireError::BadTag {
                ty: "Option",
                tag: 9
            })
        );
    }

    #[test]
    fn overlong_varints_are_rejected() {
        // 11 continuation bytes: walks off the 64-bit end.
        let overlong = [0x80u8; 11];
        assert!(matches!(
            from_bytes::<u64>(&overlong),
            Err(WireError::BadTag { ty: "varint", .. })
        ));
        // Non-canonical padding: 0 encoded in two groups.
        assert!(matches!(
            from_bytes::<u64>(&[0x80, 0x00]),
            Err(WireError::BadTag { ty: "varint", .. })
        ));
        // 10th byte may only carry the 64th bit.
        let mut max = [0xffu8; 10];
        max[9] = 0x01;
        assert_eq!(from_bytes::<u64>(&max), Ok(u64::MAX));
        max[9] = 0x02;
        assert!(matches!(
            from_bytes::<u64>(&max),
            Err(WireError::BadTag { ty: "varint", .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = to_bytes(&7u64);
        bytes.push(0);
        assert_eq!(from_bytes::<u64>(&bytes), Err(WireError::TrailingBytes));
    }

    #[test]
    fn length_prefixed_slices_are_zero_copy() {
        let mut buf = Vec::new();
        Encoder::new(&mut buf).bytes(b"hello");
        let mut d = Decoder::new(&buf);
        let s = d.bytes().expect("slice");
        assert_eq!(s, b"hello");
        // The returned slice borrows the input buffer directly.
        assert_eq!(s.as_ptr(), buf[1..].as_ptr());
        assert!(d.finish().is_ok());
    }

    #[test]
    fn oversized_length_claims_fail_before_allocating() {
        // Vec claims u64::MAX elements with 2 bytes of payload behind it.
        let mut bytes = to_bytes(&u64::MAX);
        bytes.extend_from_slice(&[1, 2]);
        assert_eq!(from_bytes::<Vec<u64>>(&bytes), Err(WireError::Truncated));
        // A slice length beyond the remaining input likewise.
        let mut buf = Vec::new();
        Encoder::new(&mut buf).varint(1 << 40);
        assert_eq!(Decoder::new(&buf).bytes(), Err(WireError::Truncated));
    }

    #[test]
    fn decoding_is_total_over_arbitrary_bytes() {
        // A deterministic byte soup: every prefix must decode or error,
        // never panic.
        let mut soup = Vec::new();
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        for _ in 0..4096 {
            x = x.wrapping_mul(0xd129_42ea_69b9_fead).rotate_left(17);
            soup.push((x >> 56) as u8);
        }
        for start in 0..64 {
            let tail = &soup[start..];
            let _ = from_bytes::<u64>(tail);
            let _ = from_bytes::<Vec<u64>>(tail);
            let _ = from_bytes::<Option<(NodeId, u64)>>(tail);
            let _ = from_bytes::<bool>(tail);
        }
    }
}
