//! Regression tests for the parallel construction pipeline: the graph a
//! rule produces must be bit-identical for every thread count, and must
//! match an independent single-threaded re-implementation of the engine's
//! per-node walk (same per-node seeding, plain serial loop).

use canon::cacophony::{build_cacophony, CacophonyRule};
use canon::crescendo::{build_crescendo, CrescendoRule};
use canon::engine::{CanonicalNetwork, LevelCtx, LinkRule};
use canon::kandy::{build_kandy, KandyRule};
use canon_hierarchy::{DomainMembership, Hierarchy, Placement};
use canon_id::rng::Seed;
use canon_id::RingDistance;
use canon_kademlia::BucketChoice;
use canon_overlay::{GraphBuilder, OverlayGraph};

/// A plain serial reference for `build_canonical`: one loop, no batching,
/// no `canon_par` — only the public `LinkRule` contract.
fn reference_build<R: LinkRule>(
    hierarchy: &Hierarchy,
    placement: &Placement,
    rule: &R,
    seed: Seed,
) -> OverlayGraph {
    let members = DomainMembership::build(hierarchy, placement);
    let all = members.ring(hierarchy.root());
    let mut builder = GraphBuilder::with_nodes(all.as_slice());
    for (id, leaf) in placement.iter() {
        let mut rng = seed.derive_node(id).rng();
        let mut state = R::NodeState::default();
        let mut bound = RingDistance::FULL_CIRCLE;
        let path = hierarchy.path_from_root(leaf);
        let leaf_depth = hierarchy.depth(leaf);
        for &domain in path.iter().rev() {
            let ring = members.ring(domain);
            let ctx = LevelCtx {
                depth: hierarchy.depth(domain),
                is_leaf_level: domain == leaf,
                levels_above_leaf: leaf_depth - hierarchy.depth(domain),
            };
            for link in rule.links(ctx, ring, id, bound, &mut rng, &mut state) {
                builder.add_link(id, link);
            }
            bound = ring.own_ring_bound(rule.metric(), id);
        }
    }
    builder.build()
}

fn world(seed: u64) -> (Hierarchy, Placement) {
    let h = Hierarchy::balanced(4, 3);
    let p = Placement::zipf(&h, 600, Seed(seed));
    (h, p)
}

fn edges(net: &CanonicalNetwork) -> Vec<(canon_overlay::NodeIndex, canon_overlay::NodeIndex)> {
    net.graph().edges().collect()
}

fn assert_thread_counts_agree(build: impl Fn() -> CanonicalNetwork) -> CanonicalNetwork {
    let serial = canon_par::with_threads(1, &build);
    let four = canon_par::with_threads(4, &build);
    let many = canon_par::with_threads(13, &build);
    assert_eq!(edges(&serial), edges(&four), "threads=1 vs threads=4");
    assert_eq!(edges(&serial), edges(&many), "threads=1 vs threads=13");
    assert_eq!(
        serial.links_per_level(),
        four.links_per_level(),
        "per-level instrumentation must not depend on threads"
    );
    serial
}

#[test]
fn crescendo_is_identical_across_thread_counts_and_reference() {
    let (h, p) = world(1);
    let net = assert_thread_counts_agree(|| build_crescendo(&h, &p));
    let reference = reference_build(&h, &p, &CrescendoRule, Seed(0));
    assert_eq!(edges(&net), reference.edges().collect::<Vec<_>>());
}

#[test]
fn cacophony_is_identical_across_thread_counts_and_reference() {
    let (h, p) = world(2);
    let net = assert_thread_counts_agree(|| build_cacophony(&h, &p, Seed(77)));
    // build_cacophony derives the "cacophony" stream from the user seed.
    let reference = reference_build(&h, &p, &CacophonyRule, Seed(77).derive("cacophony"));
    assert_eq!(edges(&net), reference.edges().collect::<Vec<_>>());
}

#[test]
fn kandy_is_identical_across_thread_counts_and_reference() {
    for choice in [BucketChoice::Closest, BucketChoice::Random] {
        let (h, p) = world(3);
        let net = assert_thread_counts_agree(|| build_kandy(&h, &p, choice, Seed(88)));
        let reference = reference_build(&h, &p, &KandyRule::new(choice), Seed(88).derive("kandy"));
        assert_eq!(
            edges(&net),
            reference.edges().collect::<Vec<_>>(),
            "{choice:?}"
        );
    }
}

#[test]
fn different_seeds_still_differ() {
    // Determinism must not collapse the randomized rules to one graph.
    let (h, p) = world(4);
    let a = build_cacophony(&h, &p, Seed(1));
    let b = build_cacophony(&h, &p, Seed(2));
    assert_ne!(edges(&a), edges(&b));
}
