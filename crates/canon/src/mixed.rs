//! Heterogeneous per-level routing structures (paper §3.5).
//!
//! Canon places no requirement that the same structure be used at every
//! hierarchy level. The paper's example: nodes of one LAN (a leaf domain)
//! can exploit cheap local broadcast to maintain a *complete graph* among
//! themselves, while higher levels merge via the ordinary Crescendo rule —
//! each node's merge links must simply be shorter than the distance to its
//! closest LAN neighbor. Routing at the leaf takes one hop; above that it
//! is standard greedy clockwise routing.
//!
//! [`LanRule`] wraps any inner [`LinkRule`] and substitutes the complete
//! graph at the leaf level.

use crate::crescendo::CrescendoRule;
use crate::engine::{build_canonical, CanonicalNetwork, LevelCtx, LinkRule};
use canon_hierarchy::{Hierarchy, Placement};
use canon_id::{
    ring::SortedRing,
    rng::{DetRng, Seed},
    NodeId, RingDistance,
};

/// A rule that connects leaf domains as complete graphs and delegates every
/// higher level to `inner`.
#[derive(Clone, Copy, Debug, Default)]
pub struct LanRule<R> {
    inner: R,
}

impl<R> LanRule<R> {
    /// Wraps `inner`, replacing its leaf-level structure with a complete
    /// graph per leaf domain.
    pub fn new(inner: R) -> Self {
        LanRule { inner }
    }
}

impl<R: LinkRule> LinkRule for LanRule<R> {
    type M = R::M;
    type NodeState = R::NodeState;

    fn metric(&self) -> R::M {
        self.inner.metric()
    }

    fn links(
        &self,
        ctx: LevelCtx,
        ring: &SortedRing,
        me: NodeId,
        bound: RingDistance,
        rng: &mut DetRng,
        state: &mut R::NodeState,
    ) -> Vec<NodeId> {
        if ctx.is_leaf_level {
            ring.iter().copied().filter(|&other| other != me).collect()
        } else {
            self.inner.links(ctx, ring, me, bound, rng, state)
        }
    }
}

/// Builds the paper's LAN example: complete graphs per leaf domain, merged
/// upward with the Crescendo rule.
pub fn build_lan_crescendo(hierarchy: &Hierarchy, placement: &Placement) -> CanonicalNetwork {
    build_canonical(hierarchy, placement, &LanRule::new(CrescendoRule), Seed(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_hierarchy::DomainMembership;
    use canon_id::{metric::Clockwise, rng::Seed};
    use canon_overlay::{route, stats, NodeIndex};
    use rand::Rng;

    fn build(n: usize) -> (Hierarchy, Placement, CanonicalNetwork) {
        let h = Hierarchy::balanced(8, 3);
        let p = Placement::uniform(&h, n, Seed(51));
        let net = build_lan_crescendo(&h, &p);
        (h, p, net)
    }

    #[test]
    fn leaf_domains_are_complete_graphs() {
        let (h, p, net) = build(256);
        let members = DomainMembership::build(&h, &p);
        let g = net.graph();
        for leaf in h.leaves() {
            let ring = members.ring(leaf);
            for &a in ring.as_slice() {
                let ia = g.index_of(a).unwrap();
                for &b in ring.as_slice() {
                    if a == b {
                        continue;
                    }
                    let ib = g.index_of(b).unwrap();
                    assert!(
                        g.neighbors(ia).contains(&ib),
                        "LAN link {a} -> {b} missing in {leaf}"
                    );
                }
            }
        }
    }

    #[test]
    fn intra_lan_routing_is_one_hop() {
        let (h, p, net) = build(256);
        let members = DomainMembership::build(&h, &p);
        let g = net.graph();
        for leaf in h.leaves().into_iter().take(5) {
            let ring = members.ring(leaf);
            if ring.len() < 2 {
                continue;
            }
            let a = g.index_of(ring.as_slice()[0]).unwrap();
            let b = g.index_of(*ring.as_slice().last().unwrap()).unwrap();
            let r = route(g, Clockwise, a, b).unwrap();
            assert_eq!(r.hops(), 1, "LAN route took {} hops", r.hops());
        }
    }

    #[test]
    fn global_routing_still_works() {
        let (_, _, net) = build(300);
        let g = net.graph();
        let mut rng = Seed(52).rng();
        for _ in 0..200 {
            let a = NodeIndex(rng.gen_range(0..g.len()) as u32);
            let b = NodeIndex(rng.gen_range(0..g.len()) as u32);
            if a == b {
                continue;
            }
            let r = route(g, Clockwise, a, b).unwrap();
            assert_eq!(r.target(), b);
        }
    }

    #[test]
    fn merge_links_still_respect_bounds() {
        let (h, p, net) = build(200);
        let members = DomainMembership::build(&h, &p);
        let g = net.graph();
        for i in g.node_indices() {
            let me = g.id(i);
            let leaf_ring = members.ring(net.leaf_of(i));
            let bound = leaf_ring.clockwise_gap(me);
            for &nb in g.neighbors(i) {
                let other = g.id(nb);
                if !leaf_ring.contains(other) {
                    assert!((me.clockwise_to(other) as u128) < bound.as_u128());
                }
            }
        }
    }

    #[test]
    fn degree_reflects_lan_size_plus_log() {
        let (h, p, net) = build(512);
        let members = DomainMembership::build(&h, &p);
        let g = net.graph();
        let d = stats::DegreeStats::of(g);
        let mean_lan = h.leaves().iter().map(|&l| members.size(l)).sum::<usize>() as f64
            / h.leaves().len() as f64;
        // Expect roughly (LAN size - 1) + O(log n) merge links.
        assert!(d.summary.mean >= mean_lan - 1.0, "mean {}", d.summary.mean);
        assert!(d.summary.mean < mean_lan + 14.0, "mean {}", d.summary.mean);
    }
}
