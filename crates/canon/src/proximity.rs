//! Group-based adaptation to physical-network proximity (paper §3.6).
//!
//! Canon constructions inherit proximity from the hierarchy (nodes of a
//! domain are usually physically close), but the *top* level of the
//! hierarchy spans the world. The paper's fix is transparent to the DHT
//! structure: group nodes by the top `T` bits of their identifier, apply
//! the link rules to *group* identifiers, and let each node satisfy a
//! group link by picking the lowest-latency node among `s` sampled members
//! of the target group (Internet measurements put `s = 32` as sufficient).
//! Nodes within one group connect densely (here: a complete graph). `T` is
//! chosen so the expected group size is a constant independent of `n`.
//!
//! Two constructions are provided:
//!
//! * [`build_chord_prox`] — flat Chord over groups (the paper's
//!   *Chord (Prox.)*);
//! * [`build_crescendo_prox`] — Crescendo with group-based construction at
//!   the top level only (*Crescendo (Prox.)*), lower levels built exactly
//!   as normal.
//!
//! Routing is group-aware ([`ProxNetwork::route`]): greedily minimize the
//! clockwise *group* distance first, then the clockwise identifier
//! distance within the destination group (where the dense intra-group
//! graph guarantees a final direct hop).

use canon_chord::chord_links_bounded;
use canon_hierarchy::{DomainId, DomainMembership, Hierarchy, Placement};
use canon_id::{ring::SortedRing, rng::Seed, NodeId, RingDistance, ID_BITS};
use canon_overlay::policy::{ProximityAware, RoutingPolicy};
use canon_overlay::{
    execute, GraphBuilder, NodeIndex, NullObserver, OverlayGraph, Route, RouteError,
};
use rand::Rng;
use std::collections::BTreeMap;

/// Parameters of the group construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProxParams {
    /// Desired expected nodes per group (paper: a small constant; we
    /// default to 16).
    pub target_group_size: usize,
    /// Nodes sampled per group link, keeping the lowest-latency one
    /// (paper cites `s = 32`).
    pub samples: usize,
}

impl Default for ProxParams {
    fn default() -> Self {
        ProxParams {
            target_group_size: 16,
            samples: 32,
        }
    }
}

/// The group prefix length `T` for `n` nodes: `⌊log2(n / target)⌋`,
/// clamped to `[0, 63]`.
pub fn group_bits(n: usize, target_group_size: usize) -> u32 {
    let groups = (n / target_group_size.max(1)).max(1);
    (usize::BITS - 1 - groups.leading_zeros()).min(ID_BITS - 1)
}

/// A proximity-adapted network: the overlay plus its group geometry.
#[derive(Clone, Debug)]
pub struct ProxNetwork {
    graph: OverlayGraph,
    group_bits: u32,
    leaf_of: Vec<DomainId>,
}

impl ProxNetwork {
    /// The overlay graph.
    pub fn graph(&self) -> &OverlayGraph {
        &self.graph
    }

    /// The group prefix length `T`.
    pub fn group_bits(&self) -> u32 {
        self.group_bits
    }

    /// The group (top-`T`-bit prefix) of node `i`.
    pub fn group_of(&self, i: NodeIndex) -> u64 {
        self.graph.id(i).prefix(self.group_bits)
    }

    /// The leaf domain of node `i` (the root domain for flat networks).
    pub fn leaf_of(&self, i: NodeIndex) -> DomainId {
        self.leaf_of[i.index()]
    }

    /// Group-aware greedy routing from `from` to `to`.
    ///
    /// Minimizes the pair (clockwise group distance, clockwise identifier
    /// distance) lexicographically; both components never increase and one
    /// strictly decreases per hop, so routes terminate.
    ///
    /// # Errors
    ///
    /// * [`RouteError::Stuck`] if no neighbor improves the pair (a
    ///   structural defect).
    /// * [`RouteError::HopLimit`] on malformed graphs.
    pub fn route(&self, from: NodeIndex, to: NodeIndex) -> Result<Route, RouteError> {
        let policy = ProximityAware::new(self.group_bits, self.graph.id(to));
        let r = execute(&self.graph, &policy, from, NullObserver)?.route;
        if r.target() != to {
            let at = r.target();
            return Err(RouteError::Stuck {
                at,
                remaining: policy.remaining(policy.key(&self.graph, at)),
            });
        }
        Ok(r)
    }
}

fn mask(t: u32) -> u64 {
    if t == 0 {
        0
    } else {
        (1u64 << t) - 1
    }
}

/// Sorted, deduplicated group prefixes plus per-group member lists.
struct Groups {
    prefixes: Vec<u64>,
    members: BTreeMap<u64, Vec<NodeId>>,
}

impl Groups {
    fn build(ids: &[NodeId], bits: u32) -> Groups {
        let mut members: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
        for &id in ids {
            members.entry(id.prefix(bits)).or_default().push(id);
        }
        let mut prefixes: Vec<u64> = members.keys().copied().collect();
        prefixes.sort_unstable();
        let _ = bits;
        Groups { prefixes, members }
    }

    /// First existing group at or clockwise-after `target` on the T-bit
    /// group circle.
    fn successor_group(&self, target: u64) -> u64 {
        let idx = self.prefixes.partition_point(|&p| p < target);
        if idx == self.prefixes.len() {
            self.prefixes[0]
        } else {
            self.prefixes[idx]
        }
    }

    /// Lowest-latency member of `group` among up to `samples` random
    /// members, judged from `from`.
    fn pick_member<L: Fn(NodeId, NodeId) -> f64, R: Rng>(
        &self,
        group: u64,
        from: NodeId,
        lat: &L,
        samples: usize,
        rng: &mut R,
    ) -> Option<NodeId> {
        let members = self.members.get(&group)?;
        let candidates: Vec<NodeId> = if members.len() <= samples {
            members.clone()
        } else {
            (0..samples)
                .map(|_| members[rng.gen_range(0..members.len())])
                .collect()
        };
        candidates
            .into_iter()
            .filter(|&m| m != from)
            .min_by(|&a, &b| lat(from, a).total_cmp(&lat(from, b)))
    }

    /// Adds the dense intra-group structure (complete graphs).
    fn add_intra_group_links(&self, b: &mut GraphBuilder) {
        for members in self.members.values() {
            for &x in members {
                for &y in members {
                    if x != y {
                        b.add_link(x, y);
                    }
                }
            }
        }
    }
}

/// Builds *Chord (Prox.)*: the Chord rule applied to T-bit groups, each
/// group link satisfied by the lowest-latency sampled member, plus complete
/// intra-group graphs.
pub fn build_chord_prox<L: Fn(NodeId, NodeId) -> f64 + Sync>(
    ids: &[NodeId],
    lat: &L,
    params: ProxParams,
    seed: Seed,
) -> ProxNetwork {
    let ring = SortedRing::new(ids.to_vec());
    let t = group_bits(ring.len(), params.target_group_size);
    let groups = Groups::build(ring.as_slice(), t);
    let mut b = GraphBuilder::with_nodes(ring.as_slice());
    let base = seed.derive("chord-prox");

    groups.add_intra_group_links(&mut b);
    let per_node = canon_par::par_map(ring.as_slice(), |_, &me| {
        let mut rng = base.derive_node(me).rng();
        let gme = me.prefix(t);
        let mut links = Vec::new();
        for k in 0..t {
            let target = (gme.wrapping_add(1u64 << k)) & mask(t);
            let g = groups.successor_group(target);
            if g == gme {
                continue;
            }
            if let Some(m) = groups.pick_member(g, me, lat, params.samples, &mut rng) {
                links.push(m);
            }
        }
        links
    });
    for (&me, links) in ring.as_slice().iter().zip(&per_node) {
        b.add_links_batch(me, links);
    }

    let leaf_of = vec![Hierarchy::new().root(); ring.len()];
    ProxNetwork {
        graph: b.build(),
        group_bits: t,
        leaf_of,
    }
}

/// Builds *Crescendo (Prox.)*: ordinary Crescendo below the root, with the
/// group-based construction replacing the Chord rule at the top level
/// (paper: "we apply this group-based construction to create links at the
/// top level of the hierarchy").
///
/// A top-level group link is kept only when the distance to the target
/// group's start is below the node's own-ring bound — the group-granular
/// reading of Canon condition (b).
///
/// # Panics
///
/// Panics if `placement` is empty.
pub fn build_crescendo_prox<L: Fn(NodeId, NodeId) -> f64 + Sync>(
    hierarchy: &Hierarchy,
    placement: &Placement,
    lat: &L,
    params: ProxParams,
    seed: Seed,
) -> ProxNetwork {
    assert!(
        !placement.is_empty(),
        "cannot build a network with no nodes"
    );
    let members = DomainMembership::build(hierarchy, placement);
    let all = members.ring(hierarchy.root());
    let t = group_bits(all.len(), params.target_group_size);
    let groups = Groups::build(all.as_slice(), t);
    let mut b = GraphBuilder::with_nodes(all.as_slice());
    let base = seed.derive("crescendo-prox");

    let mut leaf_of = vec![hierarchy.root(); all.len()];
    for (id, leaf) in placement.iter() {
        // Every placed id is in the root ring by DomainMembership::build.
        // audit: allow(panic-site)
        let idx = all.index_of(id).expect("placed node is in the root ring");
        leaf_of[idx] = leaf;
    }

    groups.add_intra_group_links(&mut b);
    let pairs: Vec<(NodeId, DomainId)> = placement.iter().collect();
    let per_node = canon_par::par_map(&pairs, |_, &(id, leaf)| {
        let mut rng = base.derive_node(id).rng();
        let mut links = Vec::new();
        let mut bound = RingDistance::FULL_CIRCLE;
        let path = hierarchy.path_from_root(leaf);
        // Ordinary Crescendo below the root (deepest first, root excluded).
        for &domain in path.iter().rev() {
            if domain == hierarchy.root() && path.len() > 1 {
                break;
            }
            let ring = members.ring(domain);
            links.extend(chord_links_bounded(ring, id, bound));
            bound = ring.clockwise_gap(id);
        }
        // Group construction at the top level.
        let gme = id.prefix(t);
        for k in 0..t {
            let target = (gme.wrapping_add(1u64 << k)) & mask(t);
            let g = groups.successor_group(target);
            if g == gme {
                continue;
            }
            let group_start = NodeId::new(g << (ID_BITS - t));
            if (id.clockwise_to(group_start) as u128) >= bound.as_u128() {
                continue; // condition (b) at group granularity
            }
            if let Some(m) = groups.pick_member(g, id, lat, params.samples, &mut rng) {
                links.push(m);
            }
        }
        links
    });
    for (&(id, _), links) in pairs.iter().zip(&per_node) {
        b.add_links_batch(id, links);
    }

    ProxNetwork {
        graph: b.build(),
        group_bits: t,
        leaf_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_id::rng::{random_ids, splitmix64};

    /// A deterministic synthetic latency: uniform in [0, 1) per ordered pair.
    fn synth_lat(a: NodeId, b: NodeId) -> f64 {
        let h = splitmix64(a.raw() ^ splitmix64(b.raw()));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn group_bits_targets_constant_group_size() {
        assert_eq!(group_bits(16, 16), 0);
        assert_eq!(group_bits(1024, 16), 6);
        assert_eq!(group_bits(65536, 16), 12);
        assert_eq!(group_bits(1, 16), 0);
    }

    #[test]
    fn chord_prox_routes_all_sampled_pairs() {
        let ids = random_ids(Seed(61), 512);
        let net = build_chord_prox(&ids, &synth_lat, ProxParams::default(), Seed(62));
        let g = net.graph();
        let mut rng = Seed(63).rng();
        let mut hops = 0usize;
        let mut count = 0usize;
        for _ in 0..300 {
            let a = NodeIndex(rng.gen_range(0..g.len()) as u32);
            let b = NodeIndex(rng.gen_range(0..g.len()) as u32);
            if a == b {
                continue;
            }
            let r = net.route(a, b).unwrap();
            assert_eq!(r.target(), b);
            hops += r.hops();
            count += 1;
        }
        // Group routing ≈ log2(#groups)/2 + 1 intra hop.
        assert!((hops as f64 / count as f64) < 8.0);
    }

    #[test]
    fn inter_group_links_have_low_latency() {
        let ids = random_ids(Seed(64), 1024);
        let net = build_chord_prox(&ids, &synth_lat, ProxParams::default(), Seed(65));
        let g = net.graph();
        let mut inter = Vec::new();
        for (a, b) in g.edges() {
            if net.group_of(a) != net.group_of(b) {
                inter.push(synth_lat(g.id(a), g.id(b)));
            }
        }
        let mean: f64 = inter.iter().sum::<f64>() / inter.len() as f64;
        // Minimum of ~16-32 uniform samples has expectation well below 0.1;
        // group membership caps the sample count, so allow 0.2.
        assert!(mean < 0.2, "mean inter-group link latency {mean}");
    }

    #[test]
    fn crescendo_prox_routes_all_sampled_pairs() {
        let h = Hierarchy::balanced(4, 3);
        let p = Placement::zipf(&h, 500, Seed(66));
        let net = build_crescendo_prox(&h, &p, &synth_lat, ProxParams::default(), Seed(67));
        let g = net.graph();
        let mut rng = Seed(68).rng();
        for _ in 0..300 {
            let a = NodeIndex(rng.gen_range(0..g.len()) as u32);
            let b = NodeIndex(rng.gen_range(0..g.len()) as u32);
            if a == b {
                continue;
            }
            let r = net.route(a, b).unwrap();
            assert_eq!(r.target(), b);
        }
    }

    #[test]
    fn crescendo_prox_keeps_lower_level_structure() {
        // Links between nodes of one depth-1 domain must match plain
        // Crescendo's links restricted to that domain (the prox group rule
        // only replaces the top level).
        let h = Hierarchy::balanced(3, 3);
        let p = Placement::uniform(&h, 240, Seed(69));
        let prox = build_crescendo_prox(&h, &p, &synth_lat, ProxParams::default(), Seed(70));
        let plain = crate::crescendo::build_crescendo(&h, &p);
        let members = DomainMembership::build(&h, &p);
        for d in h.domains_at_depth(1) {
            let ring = members.ring(d);
            for &a in ring.as_slice() {
                let pa = prox.graph().index_of(a).unwrap();
                let qa = plain.graph().index_of(a).unwrap();
                let prox_links: std::collections::BTreeSet<NodeId> = prox
                    .graph()
                    .neighbors(pa)
                    .iter()
                    .map(|&i| prox.graph().id(i))
                    .filter(|&x| ring.contains(x) && !same_group(&prox, a, x))
                    .collect();
                let plain_links: std::collections::BTreeSet<NodeId> = plain
                    .graph()
                    .neighbors(qa)
                    .iter()
                    .map(|&i| plain.graph().id(i))
                    .filter(|&x| ring.contains(x) && !same_group(&prox, a, x))
                    .collect();
                assert!(
                    prox_links.is_superset(&plain_links),
                    "{a}: prox lost intra-domain links"
                );
            }
        }
    }

    fn same_group(net: &ProxNetwork, a: NodeId, b: NodeId) -> bool {
        a.prefix(net.group_bits()) == b.prefix(net.group_bits())
    }

    #[test]
    fn constructions_are_reproducible() {
        let ids = random_ids(Seed(71), 256);
        let a = build_chord_prox(&ids, &synth_lat, ProxParams::default(), Seed(1));
        let b = build_chord_prox(&ids, &synth_lat, ProxParams::default(), Seed(1));
        assert_eq!(
            a.graph().edges().collect::<Vec<_>>(),
            b.graph().edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn tiny_network_collapses_to_one_group() {
        let ids = random_ids(Seed(72), 8);
        let net = build_chord_prox(&ids, &synth_lat, ProxParams::default(), Seed(73));
        assert_eq!(net.group_bits(), 0);
        // One group: complete graph; any pair routes in one hop.
        let r = net.route(NodeIndex(0), NodeIndex(7)).unwrap();
        assert_eq!(r.hops(), 1);
    }
}
