//! Crescendo — the Canonical version of Chord (paper §2) — and
//! nondeterministic Crescendo (§3.2).

use crate::engine::{build_canonical, CanonicalNetwork, LevelCtx, LinkRule};
use canon_chord::{chord_links_bounded, nondet_links_bounded};
use canon_hierarchy::{Hierarchy, Placement};
use canon_id::{
    metric::Clockwise,
    ring::SortedRing,
    rng::{DetRng, Seed},
    NodeId, RingDistance,
};

/// The Crescendo link rule: deterministic Chord's rule in bounded form.
///
/// At the leaf level this is exactly Chord within the leaf ring; at merge
/// levels it adds, per the paper's conditions (a) and (b), links to the
/// closest node at distance `≥ 2^k` over the merged ring whenever that node
/// is closer than any node of the own ring.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrescendoRule;

impl LinkRule for CrescendoRule {
    type M = Clockwise;
    type NodeState = ();

    fn metric(&self) -> Clockwise {
        Clockwise
    }

    fn links(
        &self,
        _ctx: LevelCtx,
        ring: &SortedRing,
        me: NodeId,
        bound: RingDistance,
        _rng: &mut DetRng,
        _state: &mut (),
    ) -> Vec<NodeId> {
        chord_links_bounded(ring, me, bound)
    }
}

/// Builds Crescendo over `hierarchy`/`placement`.
///
/// With a one-level hierarchy the result is exactly flat Chord. Routing
/// uses [`Clockwise`] greedy routing; paths are hierarchical automatically
/// (§2.2). The rule is deterministic, so no seed is taken.
pub fn build_crescendo(hierarchy: &Hierarchy, placement: &Placement) -> CanonicalNetwork {
    build_canonical(hierarchy, placement, &CrescendoRule, Seed(0))
}

/// The nondeterministic Crescendo rule (§3.2): for each `k` a uniformly
/// random node at distance in `[2^k, min(2^(k+1), bound))` — the paper's
/// point that the nondeterministic choice "may only be exercised among
/// nodes closer than any node in its own ring".
#[derive(Clone, Copy, Debug, Default)]
pub struct NondetCrescendoRule;

impl LinkRule for NondetCrescendoRule {
    type M = Clockwise;
    type NodeState = ();

    fn metric(&self) -> Clockwise {
        Clockwise
    }

    fn links(
        &self,
        _ctx: LevelCtx,
        ring: &SortedRing,
        me: NodeId,
        bound: RingDistance,
        rng: &mut DetRng,
        _state: &mut (),
    ) -> Vec<NodeId> {
        let mut links = nondet_links_bounded(ring, me, bound, rng);
        // Force the in-ring successor (when within the bound) so greedy
        // clockwise routing stays live at every level.
        if let Some(s) = ring.strict_successor(me) {
            if s != me && (me.clockwise_to(s) as u128) < bound.as_u128() && !links.contains(&s) {
                links.push(s);
            }
        }
        links
    }
}

/// Builds nondeterministic Crescendo over `hierarchy`/`placement`.
pub fn build_nondet_crescendo(
    hierarchy: &Hierarchy,
    placement: &Placement,
    seed: Seed,
) -> CanonicalNetwork {
    build_canonical(
        hierarchy,
        placement,
        &NondetCrescendoRule,
        seed.derive("nondet-crescendo"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_chord::build_chord;
    use canon_hierarchy::DomainMembership;

    use canon_overlay::{route, route_with_filter, stats, NodeIndex};
    use rand::Rng;

    fn zipf_net(n: usize, levels: u32, seed: u64) -> (Hierarchy, Placement, CanonicalNetwork) {
        let h = Hierarchy::balanced(4, levels);
        let p = Placement::zipf(&h, n, Seed(seed));
        let net = build_crescendo(&h, &p);
        (h, p, net)
    }

    #[test]
    fn one_level_crescendo_is_exactly_chord() {
        let h = Hierarchy::balanced(10, 1);
        let p = Placement::uniform(&h, 300, Seed(1));
        let net = build_crescendo(&h, &p);
        let chord = build_chord(p.ids());
        let a: Vec<_> = net.graph().edges().collect();
        let b: Vec<_> = chord.edges().collect();
        assert_eq!(a, b, "flat Crescendo must coincide with Chord");
    }

    #[test]
    fn paper_figure2_merge() {
        // Figure 2: ring A = {0,5,10,12}, ring B = {2,3,8,13}. Check the
        // merge links the paper derives: 0 → 2 (only), 8 → {10, 12}, and
        // node 2 adds none.
        let mut h = Hierarchy::new();
        let a = h.add_domain(h.root(), "A");
        let b = h.add_domain(h.root(), "B");
        let mut pairs = Vec::new();
        for raw in [0u64, 5, 10, 12] {
            pairs.push((NodeId::new(raw), a));
        }
        for raw in [2u64, 3, 8, 13] {
            pairs.push((NodeId::new(raw), b));
        }
        let p = Placement::from_pairs(&h, pairs);
        let net = build_crescendo(&h, &p);
        let g = net.graph();
        let idx = |raw: u64| g.index_of(NodeId::new(raw)).unwrap();

        // Node 0's cross-ring links: exactly {2}.
        let cross0: Vec<u64> = g
            .neighbors(idx(0))
            .iter()
            .map(|&i| g.id(i).raw())
            .filter(|r| [2u64, 3, 8, 13].contains(r))
            .collect();
        assert_eq!(cross0, vec![2]);
        // No link 0 → 3 (the paper calls this out explicitly).
        assert!(!g.neighbors(idx(0)).contains(&idx(3)));

        // Node 8's cross-ring links: exactly {10, 12} (0 ruled out).
        let mut cross8: Vec<u64> = g
            .neighbors(idx(8))
            .iter()
            .map(|&i| g.id(i).raw())
            .filter(|r| [0u64, 5, 10, 12].contains(r))
            .collect();
        cross8.sort_unstable();
        assert_eq!(cross8, vec![10, 12]);

        // Node 2 (successor 3 at distance 1) adds no cross-ring links.
        let cross2: Vec<u64> = g
            .neighbors(idx(2))
            .iter()
            .map(|&i| g.id(i).raw())
            .filter(|r| [0u64, 5, 10, 12].contains(r))
            .collect();
        assert!(
            cross2.is_empty(),
            "node 2 must add no merge links, got {cross2:?}"
        );
    }

    #[test]
    fn crescendo_matches_bruteforce_definition() {
        // Independent re-derivation of the full link set for a small
        // hierarchy, straight from the paper's conditions (a) + (b).
        let h = Hierarchy::balanced(3, 3);
        let p = Placement::uniform(&h, 60, Seed(3));
        let net = build_crescendo(&h, &p);
        let members = DomainMembership::build(&h, &p);
        let g = net.graph();

        for (id, leaf) in p.iter() {
            let mut expected: Vec<NodeId> = Vec::new();
            let path = h.path_from_root(leaf);
            let mut own: Option<&SortedRing> = None;
            for &d in path.iter().rev() {
                let ring = members.ring(d);
                let bound = own.map_or(RingDistance::FULL_CIRCLE, |r| r.clockwise_gap(id));
                for k in 0..64u32 {
                    if (1u128 << k) >= bound.as_u128() {
                        break;
                    }
                    let s = ring.successor(id.offset(1u64 << k)).unwrap();
                    if s == id {
                        continue;
                    }
                    let dist = id.clockwise_to(s) as u128;
                    if dist >= (1u128 << k) && dist < bound.as_u128() && !expected.contains(&s) {
                        expected.push(s);
                    }
                }
                own = Some(ring);
            }
            expected.sort_unstable();
            let gi = g.index_of(id).unwrap();
            let mut got: Vec<NodeId> = g.neighbors(gi).iter().map(|&i| g.id(i)).collect();
            got.sort_unstable();
            assert_eq!(got, expected, "link set mismatch for {id}");
        }
    }

    #[test]
    fn global_routing_works() {
        let (_, _, net) = zipf_net(400, 3, 4);
        let s = stats::hop_stats(net.graph(), Clockwise, 400, Seed(5)).unwrap();
        // Theorem 5: expected hops <= log2(n-1) + 1; empirically ~0.5 log n.
        assert!(s.mean <= (399f64).log2() + 1.0, "mean hops {}", s.mean);
    }

    #[test]
    fn degree_within_theorem_2_bound() {
        let (h, _, net) = zipf_net(600, 4, 6);
        let d = stats::DegreeStats::of(net.graph());
        let l = f64::from(h.levels());
        let bound = (599f64).log2() + l.min((600f64).log2());
        assert!(
            d.summary.mean <= bound,
            "mean degree {} > {bound}",
            d.summary.mean
        );
    }

    #[test]
    fn intra_domain_paths_never_leave_the_domain() {
        // The paper's fault-isolation property (§2.2): restrict routing to
        // the members of any domain; intra-domain routes must still work.
        let (h, _, net) = zipf_net(300, 3, 7);
        let g = net.graph();
        let mut rng = Seed(8).rng();
        for d in h.all_domains() {
            let members = net.members_of(&h, d);
            if members.len() < 2 {
                continue;
            }
            // audit: membership-only
            let member_set: std::collections::HashSet<NodeIndex> =
                members.iter().copied().collect();
            for _ in 0..10 {
                let a = members[rng.gen_range(0..members.len())];
                let b = members[rng.gen_range(0..members.len())];
                if a == b {
                    continue;
                }
                let r = route_with_filter(g, Clockwise, a, b, |n| member_set.contains(&n))
                    .unwrap_or_else(|e| panic!("intra-domain route failed in {d}: {e}"));
                // Stronger: the *unrestricted* route is identical, i.e. the
                // greedy route naturally stays inside.
                let free = route(g, Clockwise, a, b).unwrap();
                assert_eq!(r, free, "unrestricted route left domain {d}");
            }
        }
    }

    #[test]
    fn inter_domain_paths_converge_at_closest_predecessor() {
        // §2.2: all routes from nodes of domain D to an outside node x exit
        // D through the closest predecessor of x within D.
        let (h, p, net) = zipf_net(300, 3, 9);
        let g = net.graph();
        let members_ring = DomainMembership::build(&h, &p);
        let mut rng = Seed(10).rng();
        let depth1 = h.domains_at_depth(1);
        for &d in depth1.iter().take(3) {
            let members = net.members_of(&h, d);
            if members.len() < 3 {
                continue;
            }
            // A destination outside d.
            let outside: Vec<NodeIndex> = g
                .node_indices()
                .filter(|&i| !h.is_ancestor_or_self(d, net.leaf_of(i)))
                .collect();
            if outside.is_empty() {
                continue;
            }
            let x = outside[rng.gen_range(0..outside.len())];
            let exit_expected = members_ring
                .ring(d)
                .strict_predecessor(g.id(x))
                .expect("domain is nonempty");
            for _ in 0..8 {
                let s = members[rng.gen_range(0..members.len())];
                if s == x {
                    continue;
                }
                let r = route(g, Clockwise, s, x).unwrap();
                // Last node of the path that is still inside d:
                let exit = r
                    .path()
                    .iter()
                    .rev()
                    .find(|&&n| h.is_ancestor_or_self(d, net.leaf_of(n)))
                    .copied();
                if let Some(exit) = exit {
                    assert_eq!(
                        g.id(exit),
                        exit_expected,
                        "route from {s} exited {d} at the wrong node"
                    );
                }
            }
        }
    }

    #[test]
    fn nondet_crescendo_routes_and_is_seeded() {
        let h = Hierarchy::balanced(4, 3);
        let p = Placement::uniform(&h, 256, Seed(11));
        let a = build_nondet_crescendo(&h, &p, Seed(1));
        let b = build_nondet_crescendo(&h, &p, Seed(1));
        assert_eq!(
            a.graph().edges().collect::<Vec<_>>(),
            b.graph().edges().collect::<Vec<_>>()
        );
        let s = stats::hop_stats(a.graph(), Clockwise, 200, Seed(12)).unwrap();
        assert!(s.mean < 12.0, "mean hops {}", s.mean);
    }

    #[test]
    fn deeper_hierarchies_have_no_more_links() {
        // Figure 3's headline: average degree decreases (slightly) as the
        // number of levels grows.
        let n = 1024;
        let flat = {
            let h = Hierarchy::balanced(10, 1);
            let p = Placement::zipf(&h, n, Seed(13));
            stats::DegreeStats::of(build_crescendo(&h, &p).graph())
                .summary
                .mean
        };
        let deep = {
            let h = Hierarchy::balanced(10, 4);
            let p = Placement::zipf(&h, n, Seed(13));
            stats::DegreeStats::of(build_crescendo(&h, &p).graph())
                .summary
                .mean
        };
        assert!(
            deep <= flat + 0.2,
            "4-level degree {deep} clearly exceeds flat degree {flat}"
        );
    }
}
