//! Canon: hierarchical DHTs with flat-DHT state and routing costs.
//!
//! This crate is the reproduction of the core contribution of *Canon in G
//! Major: Designing DHTs with Hierarchical Structure* (Ganesan, Gummadi,
//! Garcia-Molina — ICDCS 2004). Canon turns any flat DHT into a
//! hierarchical one:
//!
//! 1. nodes form a conceptual domain hierarchy
//!    ([`canon_hierarchy::Hierarchy`]);
//! 2. the nodes of every **leaf** domain build the flat DHT among
//!    themselves;
//! 3. each **internal** domain's DHT is the *merge* of its children's: every
//!    node adds links to nodes of sibling rings that
//!    * (a) satisfy the flat DHT's link rule applied over the union, and
//!    * (b) are **strictly closer than any node of its own ring**.
//!
//! The merge rule keeps total state at flat-DHT levels (≈ `log n` links,
//! Theorems 2–3) and greedy routing at flat-DHT cost (Theorems 5–6) while
//! adding *path locality* (intra-domain routes never leave the domain) and
//! *path convergence* (all routes from a domain to an outside destination
//! exit through the domain's closest predecessor of the destination).
//!
//! Modules:
//!
//! * [`engine`] — the generic bottom-up merge ([`engine::build_canonical`])
//!   parameterized by a [`engine::LinkRule`];
//! * [`crescendo`] — Canonical Chord and nondeterministic Chord (§2, §3.2);
//! * [`cacophony`] — Canonical Symphony (§3.1);
//! * [`kandy`] — Canonical Kademlia (§3.3);
//! * [`cancan`] — Canonical CAN in the equal-length-identifier hypercube
//!   form (§3.4);
//! * [`mixed`] — heterogeneous per-level structures (§3.5: e.g. a complete
//!   graph on each LAN at the leaf level);
//! * [`proximity`] — group-based adaptation to physical-network proximity
//!   (§3.6) for both flat Chord and Crescendo.
//!
//! # Example
//!
//! ```
//! use canon::crescendo::build_crescendo;
//! use canon_hierarchy::{Hierarchy, Placement};
//! use canon_id::{metric::Clockwise, rng::Seed};
//! use canon_overlay::route;
//!
//! let h = Hierarchy::balanced(4, 3);
//! let placement = Placement::uniform(&h, 200, Seed(42));
//! let net = build_crescendo(&h, &placement);
//! // Global routing works at Chord cost...
//! let g = net.graph();
//! let r = route(g, Clockwise, canon_overlay::NodeIndex(0),
//!               canon_overlay::NodeIndex(100))?;
//! assert!(r.hops() < 16);
//! # Ok::<(), canon_overlay::RouteError>(())
//! ```

#![forbid(unsafe_code)]

pub mod audit;
pub mod cacophony;
pub mod cancan;
pub mod crescendo;
pub mod engine;
pub mod kandy;
pub mod mixed;
pub mod proximity;

pub use audit::{verify_canonical, verify_structure, AuditReport, Violation};
pub use engine::{build_canonical, CanonicalNetwork, LevelCtx, LinkRule};
