//! Cacophony — the Canonical version of Symphony (paper §3.1).
//!
//! Each node draws `⌊log2 n_l⌋` harmonic links within its leaf ring, then at
//! every higher level draws `⌊log2 n_level⌋` candidates over the merged ring
//! and retains only those closer than its successor at the lower level,
//! adding a link to its successor at the new level. Both Symphony and
//! Cacophony support greedy routing with a one-step lookahead
//! ([`canon_symphony::route_with_lookahead`]) for ~40% fewer hops.

use crate::engine::{build_canonical, CanonicalNetwork, LevelCtx, LinkRule};
use canon_hierarchy::{Hierarchy, Placement};
use canon_id::{
    metric::Clockwise,
    ring::SortedRing,
    rng::{DetRng, Seed},
    NodeId, RingDistance,
};
use canon_symphony::symphony_links_bounded;

/// The Cacophony link rule: Symphony's harmonic rule in bounded form.
/// Harmonic draws come from the per-node RNG the engine supplies.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacophonyRule;

impl LinkRule for CacophonyRule {
    type M = Clockwise;
    type NodeState = ();

    fn metric(&self) -> Clockwise {
        Clockwise
    }

    fn links(
        &self,
        _ctx: LevelCtx,
        ring: &SortedRing,
        me: NodeId,
        bound: RingDistance,
        rng: &mut DetRng,
        _state: &mut (),
    ) -> Vec<NodeId> {
        symphony_links_bounded(ring, me, bound, rng)
    }
}

/// Builds Cacophony over `hierarchy`/`placement`.
///
/// With a one-level hierarchy this is flat Symphony (up to RNG stream
/// labels). Routable with [`Clockwise`] greedy routing, or with
/// [`canon_symphony::route_with_lookahead`].
pub fn build_cacophony(
    hierarchy: &Hierarchy,
    placement: &Placement,
    seed: Seed,
) -> CanonicalNetwork {
    build_canonical(
        hierarchy,
        placement,
        &CacophonyRule,
        seed.derive("cacophony"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_id::rng::Seed;
    use canon_overlay::{route_with_filter, stats, NodeIndex};
    use canon_symphony::route_with_lookahead;
    use rand::Rng;

    fn net(n: usize, levels: u32) -> (Hierarchy, CanonicalNetwork) {
        let h = Hierarchy::balanced(4, levels);
        let p = Placement::zipf(&h, n, Seed(21));
        let net = build_cacophony(&h, &p, Seed(22));
        (h, net)
    }

    #[test]
    fn cacophony_routes_globally() {
        let (_, net) = net(500, 3);
        let s = stats::hop_stats(net.graph(), Clockwise, 300, Seed(23)).unwrap();
        assert!(s.mean < 20.0, "mean hops {}", s.mean);
    }

    #[test]
    fn degree_is_logarithmic() {
        let (_, net) = net(1024, 3);
        let d = stats::DegreeStats::of(net.graph());
        // Budget: log2 draws per level plus successors, minus bound
        // rejections; stays O(log n).
        assert!(
            d.summary.mean > 4.0 && d.summary.mean < 16.0,
            "mean degree {}",
            d.summary.mean
        );
    }

    #[test]
    fn intra_domain_routing_is_isolated() {
        let (h, net) = net(400, 3);
        let g = net.graph();
        let mut rng = Seed(24).rng();
        for d in h.domains_at_depth(1) {
            let members = net.members_of(&h, d);
            if members.len() < 2 {
                continue;
            }
            // audit: membership-only
            let set: std::collections::HashSet<NodeIndex> = members.iter().copied().collect();
            for _ in 0..6 {
                let a = members[rng.gen_range(0..members.len())];
                let b = members[rng.gen_range(0..members.len())];
                if a == b {
                    continue;
                }
                route_with_filter(g, Clockwise, a, b, |n| set.contains(&n))
                    .unwrap_or_else(|e| panic!("intra-domain route failed: {e}"));
            }
        }
    }

    #[test]
    fn lookahead_works_on_cacophony() {
        let (_, net) = net(600, 2);
        let g = net.graph();
        let mut rng = Seed(25).rng();
        let mut greedy = 0usize;
        let mut look = 0usize;
        for _ in 0..150 {
            let a = NodeIndex(rng.gen_range(0..g.len()) as u32);
            let b = NodeIndex(rng.gen_range(0..g.len()) as u32);
            if a == b {
                continue;
            }
            greedy += canon_overlay::route(g, Clockwise, a, b).unwrap().hops();
            let r = route_with_lookahead(g, a, b).unwrap();
            assert_eq!(r.target(), b);
            look += r.hops();
        }
        assert!(look <= greedy, "lookahead {look} > greedy {greedy}");
    }

    #[test]
    fn construction_is_reproducible() {
        let h = Hierarchy::balanced(3, 2);
        let p = Placement::uniform(&h, 128, Seed(26));
        let a = build_cacophony(&h, &p, Seed(1));
        let b = build_cacophony(&h, &p, Seed(1));
        assert_eq!(
            a.graph().edges().collect::<Vec<_>>(),
            b.graph().edges().collect::<Vec<_>>()
        );
    }
}
