//! Machine-checked structural invariants of constructed Canonical networks.
//!
//! *How to Make Chord Correct* showed how easily ring invariants rot when
//! nobody re-checks them; this module is the guard rail for this codebase.
//! [`verify_structure`] checks, link by link, the two Canon merge conditions
//! of the paper (§2.1) plus per-domain ring completeness, using only the
//! metric — independently of the link rule that built the network:
//!
//! * **condition (b)** — every merged link must be *strictly closer than any
//!   node of the node's own (child) ring*. Under the clockwise metric this
//!   is a strict distance bound against the child-ring gap. Under XOR the
//!   repo follows the paper's per-bucket reading (see `kandy.rs`): a merged
//!   link's distance band must be empty in the child ring;
//! * **ring completeness** — within every domain of a node's root path the
//!   node retains the links greedy routing needs to stay inside the domain
//!   (its domain-ring successor under the clockwise metric; a link into
//!   every non-empty XOR bucket of the domain ring under XOR). This is the
//!   structural basis of path locality (§2.2);
//! * **instrumentation consistency** — `links_per_level` sums to the
//!   graph's link count and has no entries below the hierarchy's depth.
//!
//! [`verify_canonical`] additionally re-derives every node's link set from
//! the rule with the same seed (serially) and requires the graph to match
//! bit for bit — Canon **condition (a)** by reconstruction, which also
//! catches seed-nondeterminism and post-build corruption.
//!
//! The engine runs [`verify_structure`] automatically after every
//! `build_canonical` in debug and test builds; release builds skip it. The
//! `canon-audit` crate drives both passes as a CI subcommand.

use crate::engine::{build_canonical, CanonicalNetwork, LinkRule};
use canon_hierarchy::{DomainId, DomainMembership, Hierarchy, Placement};
use canon_id::{metric::Metric, rng::Seed, NodeId, RingDistance, ID_BITS};
use std::fmt;

/// A violated invariant, locating the offending link or node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A merged link is not strictly closer than the closest node of the
    /// link owner's child ring (clockwise reading of condition (b)).
    ConditionB {
        /// Link owner.
        from: NodeId,
        /// Link target, in a sibling ring.
        to: NodeId,
        /// The domain whose merge granted the link (the leaves' LCA).
        merged_at: DomainId,
        /// Metric distance of the link.
        distance: u64,
        /// The own-ring bound the link had to beat.
        bound: RingDistance,
    },
    /// A merged link's XOR distance band is already served by the child
    /// ring (per-bucket reading of condition (b)).
    ConditionBBucket {
        /// Link owner.
        from: NodeId,
        /// Link target, in a sibling ring.
        to: NodeId,
        /// The domain whose merge granted the link.
        merged_at: DomainId,
        /// The distance band `[2^bucket, 2^(bucket+1))` of the link.
        bucket: u32,
        /// A child-ring node already in that band.
        conflicting: NodeId,
    },
    /// A node is missing the link to its successor within a domain ring it
    /// belongs to (clockwise ring completeness).
    MissingSuccessor {
        /// The incomplete node.
        node: NodeId,
        /// The domain whose ring is incomplete.
        domain: DomainId,
        /// The successor the node should link to.
        successor: NodeId,
    },
    /// A node has no link into a non-empty XOR bucket of a domain ring it
    /// belongs to (XOR ring completeness).
    MissingBucketLink {
        /// The incomplete node.
        node: NodeId,
        /// The domain whose ring is incomplete.
        domain: DomainId,
        /// The uncovered bucket.
        bucket: u32,
    },
    /// `links_per_level` does not sum to the graph's link count, or has
    /// entries deeper than the hierarchy.
    LevelAccounting {
        /// Sum of the per-level counters.
        sum: usize,
        /// Actual number of graph links.
        links: usize,
        /// Number of per-level entries.
        levels: usize,
        /// Number of levels in the hierarchy.
        hierarchy_levels: u32,
    },
    /// Re-deriving a node's links from the rule produced a different set
    /// (condition (a) / determinism failure).
    RebuildMismatch {
        /// The node whose links differ.
        node: NodeId,
        /// Links the rule derives but the graph lacks.
        missing: Vec<NodeId>,
        /// Links the graph has but the rule does not derive.
        unexpected: Vec<NodeId>,
    },
    /// Re-derivation produced different per-level link counts.
    RebuildLevelCounts {
        /// Counts the rule derives.
        expected: Vec<usize>,
        /// Counts recorded on the network.
        actual: Vec<usize>,
    },
    /// The graph's next-hop index disagrees with an exhaustive neighbor
    /// scan (the routing engine's fast-path invariant).
    IndexDivergence {
        /// The probed node.
        node: NodeId,
        /// The probed routing target.
        target: NodeId,
        /// The neighbor the index selects.
        indexed: Option<NodeId>,
        /// The neighbor an exhaustive scan selects.
        scanned: Option<NodeId>,
    },
}

impl Violation {
    /// The audit rule identifier, matching the linter's `[rule]` notation.
    pub fn rule(&self) -> &'static str {
        match self {
            Violation::ConditionB { .. } | Violation::ConditionBBucket { .. } => "condition-b",
            Violation::MissingSuccessor { .. } | Violation::MissingBucketLink { .. } => {
                "ring-completeness"
            }
            Violation::LevelAccounting { .. } => "level-accounting",
            Violation::RebuildMismatch { .. } | Violation::RebuildLevelCounts { .. } => {
                "condition-a"
            }
            Violation::IndexDivergence { .. } => "next-hop-index",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.rule())?;
        match self {
            Violation::ConditionB {
                from,
                to,
                merged_at,
                distance,
                bound,
            } => write!(
                f,
                "link {from} -> {to} merged at {merged_at}: distance {distance} \
                 is not below the own-ring bound {bound:?}"
            ),
            Violation::ConditionBBucket {
                from,
                to,
                merged_at,
                bucket,
                conflicting,
            } => write!(
                f,
                "link {from} -> {to} merged at {merged_at}: bucket {bucket} already \
                 holds own-ring node {conflicting}"
            ),
            Violation::MissingSuccessor {
                node,
                domain,
                successor,
            } => write!(
                f,
                "node {node} lacks its successor link {successor} within {domain}"
            ),
            Violation::MissingBucketLink {
                node,
                domain,
                bucket,
            } => write!(
                f,
                "node {node} lacks a link into non-empty bucket {bucket} of {domain}"
            ),
            Violation::LevelAccounting {
                sum,
                links,
                levels,
                hierarchy_levels,
            } => write!(
                f,
                "links_per_level sums to {sum} over {levels} levels, but the graph \
                 has {links} links and the hierarchy {hierarchy_levels} levels"
            ),
            Violation::RebuildMismatch {
                node,
                missing,
                unexpected,
            } => write!(
                f,
                "node {node}: re-derived links differ ({} missing, {} unexpected)",
                missing.len(),
                unexpected.len()
            ),
            Violation::RebuildLevelCounts { expected, actual } => write!(
                f,
                "re-derived links_per_level {expected:?} != recorded {actual:?}"
            ),
            Violation::IndexDivergence {
                node,
                target,
                indexed,
                scanned,
            } => write!(
                f,
                "node {node}, target {target}: next-hop index selects {indexed:?} \
                 but an exhaustive scan selects {scanned:?}"
            ),
        }
    }
}

/// What an audit pass covered; returned on success for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Nodes in the network.
    pub nodes: usize,
    /// Directed links in the network.
    pub links: usize,
    /// Links whose leaves' LCA was above the owner's leaf (merged links
    /// subjected to the condition (b) check).
    pub merged_links_checked: usize,
    /// (node, domain) ring-membership pairs checked for completeness.
    pub rings_checked: usize,
    /// (node, target) pairs probed for next-hop-index agreement.
    pub index_probes: usize,
    /// Whether the rule re-derivation (condition (a)) pass ran.
    pub recomputed: bool,
}

/// The XOR bucket index of the (non-zero) distance `d`: `k` such that
/// `d ∈ [2^k, 2^(k+1))`.
fn bucket_of(d: u64) -> u32 {
    debug_assert_ne!(d, 0);
    ID_BITS - 1 - d.leading_zeros()
}

/// Checks conditions (a)-independent structure: condition (b) on every
/// merged link, ring completeness per domain, and `links_per_level`
/// accounting. Returns every violation found (empty = structurally sound).
///
/// The metric decides the reading of condition (b) and completeness:
/// clockwise networks use strict distance bounds and successor links, XOR
/// networks the per-bucket formulation (see module docs).
pub fn verify_structure<M: Metric>(
    hierarchy: &Hierarchy,
    placement: &Placement,
    metric: M,
    net: &CanonicalNetwork,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let members = DomainMembership::build(hierarchy, placement);
    let graph = net.graph();
    let report = audit_structure(hierarchy, &members, metric, net, graph, &mut violations);
    let _ = report;
    violations
}

/// Shared body of [`verify_structure`]/[`verify_canonical`].
fn audit_structure<M: Metric>(
    hierarchy: &Hierarchy,
    members: &DomainMembership,
    metric: M,
    net: &CanonicalNetwork,
    graph: &canon_overlay::OverlayGraph,
    violations: &mut Vec<Violation>,
) -> AuditReport {
    let mut report = AuditReport {
        nodes: graph.len(),
        links: graph.link_count(),
        ..AuditReport::default()
    };

    // Condition (b) on every merged link. A link is "merged" when the
    // owner's and target's leaf domains differ; the level that granted it
    // is exactly their LCA (bounded rules cannot emit a cross-ring pair at
    // any other level — see the module docs of `engine`).
    for (ui, vi) in graph.edges() {
        let (u, v) = (graph.id(ui), graph.id(vi));
        let (lu, lv) = (net.leaf_of(ui), net.leaf_of(vi));
        if lu == lv {
            continue; // intra-leaf link: the flat rule applies unrestricted
        }
        let lca = hierarchy.lca(lu, lv);
        let child = hierarchy.ancestor_at_depth(lu, hierarchy.depth(lca) + 1);
        let own_ring = members.ring(child);
        report.merged_links_checked += 1;
        let d = metric.distance(u, v);
        if metric.is_symmetric() {
            // Per-bucket reading: the link's distance band must be empty in
            // the child ring (otherwise a lower level already served it).
            let k = bucket_of(d);
            if let Some(&conflicting) = own_ring.xor_bucket(u, k).first() {
                violations.push(Violation::ConditionBBucket {
                    from: u,
                    to: v,
                    merged_at: lca,
                    bucket: k,
                    conflicting,
                });
            }
        } else {
            let bound = own_ring.own_ring_bound(metric, u);
            if u128::from(d) >= bound.as_u128() {
                violations.push(Violation::ConditionB {
                    from: u,
                    to: v,
                    merged_at: lca,
                    distance: d,
                    bound,
                });
            }
        }
    }

    // Ring completeness per domain: walk each node's root path.
    for ui in graph.node_indices() {
        let u = graph.id(ui);
        // Invariant verification, not routing: buckets every in-domain
        // neighbor by distance to check ring completeness.
        // audit: allow(greedy-outside-engine)
        let neighbors = graph.neighbors(ui);
        for domain in hierarchy.ancestors(net.leaf_of(ui)) {
            let ring = members.ring(domain);
            if ring.len() < 2 {
                continue;
            }
            report.rings_checked += 1;
            if metric.is_symmetric() {
                // Which buckets do the in-domain neighbors cover?
                let mut covered = 0u64;
                for &ni in neighbors {
                    let nl = net.leaf_of(ni);
                    if hierarchy.depth(nl) >= hierarchy.depth(domain)
                        && hierarchy.ancestor_at_depth(nl, hierarchy.depth(domain)) == domain
                    {
                        covered |= 1u64 << bucket_of(metric.distance(u, graph.id(ni)));
                    }
                }
                for k in 0..ID_BITS {
                    if covered & (1u64 << k) == 0 && !ring.xor_bucket(u, k).is_empty() {
                        violations.push(Violation::MissingBucketLink {
                            node: u,
                            domain,
                            bucket: k,
                        });
                    }
                }
            } else {
                match ring.strict_successor(u) {
                    Some(s) if s != u => {
                        let si = graph.index_of(s);
                        if si.is_none_or(|si| neighbors.binary_search(&si).is_err()) {
                            violations.push(Violation::MissingSuccessor {
                                node: u,
                                domain,
                                successor: s,
                            });
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    // Next-hop-index agreement: the routing engine's fast path selects
    // each hop from the graph's `NextHopIndex` instead of scanning
    // neighbors; verify the two agree on deterministic probe targets
    // spread around the identifier circle from every node.
    let index = graph.next_hop_index();
    for ui in graph.node_indices() {
        let u = graph.id(ui);
        let probes = [
            u.offset(1),
            u.offset(u64::MAX / 2),
            NodeId::new(u.raw().rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15),
        ];
        for target in probes {
            report.index_probes += 1;
            let indexed = index.next_toward(metric, ui, target);
            // Invariant reference, not routing: exhaustive neighbor scan.
            let scanned = graph
                // audit: allow(greedy-outside-engine)
                .neighbors(ui)
                .iter()
                .map(|&nb| (metric.distance(graph.id(nb), target), nb))
                .min()
                .map(|(d, nb)| (nb, d));
            if indexed != scanned {
                violations.push(Violation::IndexDivergence {
                    node: u,
                    target,
                    indexed: indexed.map(|(nb, _)| graph.id(nb)),
                    scanned: scanned.map(|(nb, _)| graph.id(nb)),
                });
            }
        }
    }

    // Instrumentation accounting.
    let sum: usize = net.links_per_level().iter().sum();
    if sum != report.links || net.links_per_level().len() > hierarchy.levels() as usize {
        violations.push(Violation::LevelAccounting {
            sum,
            links: report.links,
            levels: net.links_per_level().len(),
            hierarchy_levels: hierarchy.levels(),
        });
    }

    report
}

/// Full audit: [`verify_structure`] plus condition (a) by re-derivation —
/// the network is rebuilt serially from `(rule, seed)` and must match the
/// given one bit for bit (links and per-level counts).
///
/// `seed` must be the seed `build_canonical` received (the `build_*`
/// convenience constructors derive labeled seeds; see their sources).
///
/// # Errors
///
/// Returns every violation found when the network fails the audit.
pub fn verify_canonical<R: LinkRule>(
    hierarchy: &Hierarchy,
    placement: &Placement,
    rule: &R,
    seed: Seed,
    net: &CanonicalNetwork,
) -> Result<AuditReport, Vec<Violation>> {
    let mut violations = Vec::new();
    let members = DomainMembership::build(hierarchy, placement);
    let graph = net.graph();
    let mut report = audit_structure(
        hierarchy,
        &members,
        rule.metric(),
        net,
        graph,
        &mut violations,
    );

    // Condition (a) by reconstruction: the rule, applied over the union
    // ring at every level with the same per-node seeds, must re-derive
    // exactly the links the network holds.
    let rebuilt = canon_par::with_threads(1, || build_canonical(hierarchy, placement, rule, seed));
    let rg = rebuilt.graph();
    if rg.ids() == graph.ids() {
        for ui in graph.node_indices() {
            let (got, want) = (graph.neighbors(ui), rg.neighbors(ui));
            if got != want {
                let missing = want
                    .iter()
                    .filter(|i| !got.contains(i))
                    .map(|&i| graph.id(i))
                    .collect();
                let unexpected = got
                    .iter()
                    .filter(|i| !want.contains(i))
                    .map(|&i| graph.id(i))
                    .collect();
                violations.push(Violation::RebuildMismatch {
                    node: graph.id(ui),
                    missing,
                    unexpected,
                });
            }
        }
    } else {
        violations.push(Violation::RebuildMismatch {
            node: graph.ids().first().copied().unwrap_or_default(),
            missing: rg.ids().to_vec(),
            unexpected: graph.ids().to_vec(),
        });
    }
    if rebuilt.links_per_level() != net.links_per_level() {
        violations.push(Violation::RebuildLevelCounts {
            expected: rebuilt.links_per_level().to_vec(),
            actual: net.links_per_level().to_vec(),
        });
    }
    report.recomputed = true;

    if violations.is_empty() {
        Ok(report)
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cacophony::build_cacophony;
    use crate::cancan::build_cancan;
    use crate::crescendo::{build_crescendo, build_nondet_crescendo, CrescendoRule};
    use crate::kandy::build_kandy;
    use crate::mixed::build_lan_crescendo;
    use canon_id::metric::{Clockwise, Xor};
    use canon_kademlia::BucketChoice;

    fn setup(levels: u32, n: usize) -> (Hierarchy, Placement) {
        let h = Hierarchy::balanced(3, levels);
        let p = Placement::uniform(&h, n, Seed(11));
        (h, p)
    }

    #[test]
    fn crescendo_passes_full_audit() {
        let (h, p) = setup(3, 120);
        let net = build_crescendo(&h, &p);
        let report = verify_canonical(&h, &p, &CrescendoRule, Seed(0), &net).unwrap();
        assert_eq!(report.nodes, 120);
        assert!(report.merged_links_checked > 0);
        assert!(report.rings_checked > 0);
        assert_eq!(report.index_probes, 3 * 120);
        assert!(report.recomputed);
    }

    #[test]
    fn all_builders_pass_structure_audit() {
        let (h, p) = setup(3, 90);
        let clockwise: Vec<CanonicalNetwork> = vec![
            build_crescendo(&h, &p),
            build_nondet_crescendo(&h, &p, Seed(5)),
            build_cacophony(&h, &p, Seed(6)),
            build_lan_crescendo(&h, &p),
        ];
        for net in &clockwise {
            assert_eq!(verify_structure(&h, &p, Clockwise, net), Vec::new());
        }
        let xor: Vec<CanonicalNetwork> = vec![
            build_kandy(&h, &p, BucketChoice::Closest, Seed(7)),
            build_kandy(&h, &p, BucketChoice::Random, Seed(8)),
            build_cancan(&h, &p),
        ];
        for net in &xor {
            assert_eq!(verify_structure(&h, &p, Xor, net), Vec::new());
        }
    }

    #[test]
    fn flat_network_has_no_merged_links() {
        let (h, p) = setup(1, 40);
        let net = build_crescendo(&h, &p);
        let report = verify_canonical(&h, &p, &CrescendoRule, Seed(0), &net).unwrap();
        assert_eq!(report.merged_links_checked, 0);
    }

    #[test]
    fn planted_condition_b_violation_is_caught() {
        // Build a sound Crescendo network, then graft a link that overshoots
        // the owner's child ring: from a node to the node "farthest" from it
        // in another leaf (clockwise), which cannot beat the own-ring bound
        // for rings of size >= 2.
        use canon_overlay::GraphBuilder;
        let (h, p) = setup(2, 60);
        let net = build_crescendo(&h, &p);
        let g = net.graph();

        // Pick a node whose leaf ring has >= 2 members and a target in a
        // different leaf at clockwise distance above the own-ring gap.
        let members = DomainMembership::build(&h, &p);
        let mut planted = None;
        'outer: for ui in g.node_indices() {
            let u = g.id(ui);
            let leaf = net.leaf_of(ui);
            let ring = members.ring(leaf);
            if ring.len() < 2 {
                continue;
            }
            let bound = ring.clockwise_gap(u);
            for vi in g.node_indices() {
                let v = g.id(vi);
                if net.leaf_of(vi) != leaf
                    && u128::from(u.clockwise_to(v)) >= bound.as_u128()
                    && !g.neighbors(ui).contains(&vi)
                {
                    planted = Some((u, v));
                    break 'outer;
                }
            }
        }
        let (u, v) = planted.expect("test population admits a bad link");

        // Re-create the graph with the bad link added.
        let mut b = GraphBuilder::with_nodes(g.ids());
        for (a, t) in g.edges() {
            b.add_link(g.id(a), g.id(t));
        }
        b.add_link(u, v);
        let mut tampered = net.clone();
        tampered_set_graph(&mut tampered, b.build());

        let violations = verify_structure(&h, &p, Clockwise, &tampered);
        assert!(violations.iter().any(
            |x| matches!(x, Violation::ConditionB { from, to, .. } if *from == u && *to == v)
        ));
        // Accounting also trips: links_per_level no longer sums up.
        assert!(violations
            .iter()
            .any(|x| matches!(x, Violation::LevelAccounting { .. })));
        // And the full audit reports the grafted link as unexpected.
        let errs = verify_canonical(&h, &p, &CrescendoRule, Seed(0), &tampered).unwrap_err();
        assert!(errs
            .iter()
            .any(|x| matches!(x, Violation::RebuildMismatch { .. })));
    }

    #[test]
    fn removed_successor_link_is_caught() {
        use canon_overlay::GraphBuilder;
        let (h, p) = setup(2, 50);
        let net = build_crescendo(&h, &p);
        let g = net.graph();
        // Drop one node's global-ring successor link.
        let victim = g.node_indices().next().unwrap();
        let u = g.id(victim);
        let succ = g.ring().strict_successor(u).unwrap();
        let mut b = GraphBuilder::with_nodes(g.ids());
        for (a, t) in g.edges() {
            if !(a == victim && g.id(t) == succ) {
                b.add_link(g.id(a), g.id(t));
            }
        }
        let mut tampered = net.clone();
        tampered_set_graph(&mut tampered, b.build());
        let violations = verify_structure(&h, &p, Clockwise, &tampered);
        assert!(violations
            .iter()
            .any(|x| matches!(x, Violation::MissingSuccessor { node, .. } if *node == u)));
    }

    #[test]
    fn violations_render_with_rule_tags() {
        let v = Violation::MissingSuccessor {
            node: NodeId::new(1),
            domain: Hierarchy::new().root(),
            successor: NodeId::new(2),
        };
        let s = v.to_string();
        assert!(s.starts_with("[ring-completeness]"), "{s}");
        assert!(s.contains("successor"), "{s}");
    }

    /// Test-only back door: swap the graph of a network to model tampering.
    fn tampered_set_graph(net: &mut CanonicalNetwork, graph: canon_overlay::OverlayGraph) {
        net.replace_graph_for_tests(graph);
    }
}
