//! Can-Can — the Canonical version of CAN (paper §3.4), in the
//! equal-length-identifier hypercube formulation.
//!
//! The paper's CAN generalization views identifiers as a binary prefix tree
//! and edges as hypercube edges; after padding to equal length, the edge
//! rule for dimension `i` is "link to a node in the sibling subtree at bit
//! `i`" and routing is left-to-right bit fixing — greedy under XOR. With
//! full-length identifiers (this module), a node's CAN edge for dimension
//! `i` targets the *owner* of the bit-flipped point: the node XOR-closest
//! to `me.flip_bit(i)`.
//!
//! Can-Can applies the rule per level: "a node creates a link at a higher
//! level only if it is a valid CAN edge and is shorter than the shortest
//! link at the lower level". As with Kandy, we read the restriction
//! **per dimension**: the link for dimension `i` is created at the lowest
//! level whose ring has a non-empty sibling subtree for bit `i`, and
//! higher-level candidates for covered dimensions are discarded. This
//! keeps out-degree at the flat log-dimensional-CAN level, preserves
//! bit-fixing routability, and points links into the lowest (most local)
//! possible domain.
//!
//! The faithful flat CAN — with join-time zone splitting, variable-length
//! zone identifiers and zone-based key responsibility — lives in the
//! `canon-can` crate; the paper notes the two formulations have almost
//! identical properties.

use crate::engine::{build_canonical, CanonicalNetwork, LevelCtx, LinkRule};
use canon_hierarchy::{Hierarchy, Placement};
use canon_id::{
    metric::Xor,
    ring::SortedRing,
    rng::{DetRng, Seed},
    NodeId, RingDistance, ID_BITS,
};

/// The Can-Can link rule: per-dimension, lowest-level-first hypercube
/// edges. The dimensions covered at lower levels live in the per-node
/// `NodeState` bitmap (fresh — all zeros — at each node's leaf).
#[derive(Clone, Copy, Debug, Default)]
pub struct CanCanRule;

impl LinkRule for CanCanRule {
    type M = Xor;
    /// Bitmap of dimensions already covered at lower levels.
    type NodeState = u64;

    fn metric(&self) -> Xor {
        Xor
    }

    fn links(
        &self,
        _ctx: LevelCtx,
        ring: &SortedRing,
        me: NodeId,
        _bound: RingDistance,
        _rng: &mut DetRng,
        covered: &mut u64,
    ) -> Vec<NodeId> {
        let mut out = Vec::new();
        for i in 0..ID_BITS {
            if *covered & (1u64 << i) != 0 {
                continue;
            }
            let target = me.flip_bit(i);
            let Some(owner) = ring.xor_closest_excluding(target, me) else {
                continue;
            };
            // A valid CAN edge for dimension i lands in the sibling subtree:
            // the owner's top differing bit with `me` must be exactly i.
            if me.xor_to(owner).leading_zeros() != i {
                continue; // sibling subtree empty at this level
            }
            out.push(owner);
            *covered |= 1u64 << i;
        }
        out
    }
}

/// Builds Can-Can over `hierarchy`/`placement`. The rule is deterministic,
/// so no seed is taken.
pub fn build_cancan(hierarchy: &Hierarchy, placement: &Placement) -> CanonicalNetwork {
    build_canonical(hierarchy, placement, &CanCanRule, Seed(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_hierarchy::DomainMembership;
    use canon_id::rng::Seed;
    use canon_overlay::{route, route_with_filter, stats, NodeIndex};
    use rand::Rng;

    fn net(n: usize, levels: u32) -> (Hierarchy, Placement, CanonicalNetwork) {
        let h = Hierarchy::balanced(4, levels);
        let p = Placement::zipf(&h, n, Seed(41));
        let net = build_cancan(&h, &p);
        (h, p, net)
    }

    #[test]
    fn flat_cancan_routes_everywhere() {
        let h = Hierarchy::balanced(4, 1);
        let p = Placement::uniform(&h, 256, Seed(42));
        let net = build_cancan(&h, &p);
        let g = net.graph();
        let mut rng = Seed(43).rng();
        for _ in 0..300 {
            let a = NodeIndex(rng.gen_range(0..g.len()) as u32);
            let b = NodeIndex(rng.gen_range(0..g.len()) as u32);
            if a == b {
                continue;
            }
            let r = route(g, Xor, a, b).unwrap();
            assert_eq!(r.target(), b);
        }
    }

    #[test]
    fn hierarchical_cancan_routes_all_pairs() {
        let (_, _, net) = net(400, 3);
        let g = net.graph();
        let mut rng = Seed(44).rng();
        for _ in 0..500 {
            let a = NodeIndex(rng.gen_range(0..g.len()) as u32);
            let b = NodeIndex(rng.gen_range(0..g.len()) as u32);
            if a == b {
                continue;
            }
            let r = route(g, Xor, a, b).unwrap();
            assert_eq!(r.target(), b);
        }
    }

    #[test]
    fn one_link_per_distinguishable_dimension() {
        let (h, p, net) = net(300, 3);
        let members = DomainMembership::build(&h, &p);
        let root_ring = members.ring(h.root());
        let g = net.graph();
        for i in g.node_indices() {
            let me = g.id(i);
            // A dimension is distinguishable iff the global sibling subtree
            // at that bit is non-empty; that equals the number of non-empty
            // XOR buckets (bit j ↔ bucket 63-j).
            let dims = (0..ID_BITS)
                .filter(|&k| !root_ring.xor_bucket(me, k).is_empty())
                .count();
            assert_eq!(g.degree(i), dims, "node {me}");
        }
    }

    #[test]
    fn intra_domain_paths_stay_local() {
        let (h, _, net) = net(400, 3);
        let g = net.graph();
        let mut rng = Seed(45).rng();
        for d in h.domains_at_depth(1) {
            let members = net.members_of(&h, d);
            if members.len() < 2 {
                continue;
            }
            // audit: membership-only
            let set: std::collections::HashSet<NodeIndex> = members.iter().copied().collect();
            for _ in 0..6 {
                let a = members[rng.gen_range(0..members.len())];
                let b = members[rng.gen_range(0..members.len())];
                if a == b {
                    continue;
                }
                let free = route(g, Xor, a, b).unwrap();
                let fenced = route_with_filter(g, Xor, a, b, |n| set.contains(&n)).unwrap();
                assert_eq!(free, fenced, "route left domain {d}");
            }
        }
    }

    #[test]
    fn degree_is_logarithmic() {
        let (_, _, net) = net(1024, 2);
        let d = stats::DegreeStats::of(net.graph());
        assert!(
            d.summary.mean > 4.0 && d.summary.mean < 14.0,
            "mean degree {}",
            d.summary.mean
        );
    }

    #[test]
    fn two_nodes_link_mutually() {
        let h = Hierarchy::balanced(2, 1);
        let p = Placement::from_pairs(
            &h,
            vec![
                (NodeId::new(0b1010 << 60), h.root()),
                (NodeId::new(0b0101 << 60), h.root()),
            ],
        );
        let net = build_cancan(&h, &p);
        assert_eq!(net.graph().link_count(), 2);
    }
}
