//! The generic Canon merge engine (paper §2.1, generalized in §3).
//!
//! Construction proceeds per node, walking from its leaf domain to the
//! root. At the leaf the flat link rule applies unrestricted; at every
//! internal domain the same rule applies over the *merged* ring but only
//! links **strictly shorter than the distance to the closest node of the
//! node's own (child) ring** are kept — Canon's condition (b). The bound is
//! the full circle for a node alone in its child ring, so first nodes of a
//! domain link freely, exactly as the paper prescribes.
//!
//! The engine is generic over a [`LinkRule`]; the four Canonical DHTs of
//! the paper are rule instantiations in sibling modules.
//!
//! # Parallel construction
//!
//! Because the walk is independent per node, the engine computes every
//! node's link sets in parallel (over [`canon_par`]) and then merges them
//! into the graph serially in placement order. Determinism is preserved by
//! construction:
//!
//! * a node's random stream comes from [`Seed::derive_node`] — a pure
//!   function of `(seed, node)`, never of scheduling;
//! * a node's mutable scratch ([`LinkRule::NodeState`]) is created fresh
//!   per node and threaded only through that node's own leaf-to-root walk;
//! * the merge adds batches in placement order, so the built graph is
//!   bit-identical for any thread count (including 1).

use canon_hierarchy::{DomainId, DomainMembership, Hierarchy, Placement};
use canon_id::{
    metric::Metric,
    ring::SortedRing,
    rng::{DetRng, Seed},
    NodeId, RingDistance,
};
use canon_overlay::{GraphBuilder, NodeIndex, OverlayGraph};

/// Where in the hierarchy a link rule is being applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelCtx {
    /// Depth of the domain being processed (root = 0).
    pub depth: u32,
    /// Whether this is the node's leaf domain (the flat base ring).
    pub is_leaf_level: bool,
    /// Levels above the node's leaf domain (0 at the leaf).
    pub levels_above_leaf: u32,
}

/// A flat DHT's per-ring link rule in *bounded* form.
///
/// `links` must return the links the rule grants `me` over `ring`,
/// restricted to nodes at metric distance strictly below `bound`. Passing
/// [`RingDistance::FULL_CIRCLE`] must yield the flat rule.
///
/// Rules are shared across worker threads (`&self`, `Sync`); all per-node
/// mutability lives in the explicit `rng` (seeded per node by the engine)
/// and `state` (a fresh [`LinkRule::NodeState`] per node, threaded through
/// that node's leaf-to-root walk) parameters.
pub trait LinkRule: Sync {
    /// The metric the rule (and greedy routing on the result) uses.
    type M: Metric;

    /// Per-node scratch carried across the levels of one node's walk
    /// (e.g. the buckets already covered at lower levels). `()` for
    /// stateless rules.
    type NodeState: Default;

    /// The metric instance.
    fn metric(&self) -> Self::M;

    /// Links for `me` over `ring` at distance `< bound`.
    fn links(
        &self,
        ctx: LevelCtx,
        ring: &SortedRing,
        me: NodeId,
        bound: RingDistance,
        rng: &mut DetRng,
        state: &mut Self::NodeState,
    ) -> Vec<NodeId>;
}

/// A constructed Canonical (or flat) network: the overlay graph plus each
/// node's position in the hierarchy.
#[derive(Clone, Debug)]
pub struct CanonicalNetwork {
    graph: OverlayGraph,
    leaf_of: Vec<DomainId>,
    links_per_level: Vec<usize>,
}

impl CanonicalNetwork {
    /// The overlay graph (node order: identifiers ascending).
    pub fn graph(&self) -> &OverlayGraph {
        &self.graph
    }

    /// The leaf domain of graph node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn leaf_of(&self, i: NodeIndex) -> DomainId {
        self.leaf_of[i.index()]
    }

    /// The ancestor domain of graph node `i` at `depth` (clamped to the
    /// node's leaf depth).
    pub fn domain_at_depth(&self, hierarchy: &Hierarchy, i: NodeIndex, depth: u32) -> DomainId {
        let leaf = self.leaf_of(i);
        hierarchy.ancestor_at_depth(leaf, depth.min(hierarchy.depth(leaf)))
    }

    /// Graph indices of all members of domain `d` (subtree membership).
    pub fn members_of(&self, hierarchy: &Hierarchy, d: DomainId) -> Vec<NodeIndex> {
        self.graph
            .node_indices()
            .filter(|&i| hierarchy.is_ancestor_or_self(d, self.leaf_of(i)))
            .collect()
    }

    /// How many links the construction added at each hierarchy depth
    /// (index = domain depth; root = 0). A link granted at several depths
    /// is counted at the deepest one, where the node first acquired it —
    /// the per-level state breakdown behind the paper's Figure 3.
    ///
    /// Stored as plain per-level counters — the per-node, per-level link
    /// `Vec`s that used to feed this accounting are folded into counts
    /// during the merge and never materialized in the network.
    pub fn links_per_level(&self) -> &[usize] {
        &self.links_per_level
    }

    /// Resident bytes of the network's live state: the overlay graph (see
    /// [`OverlayGraph::resident_bytes`] for the convention — live entries,
    /// not allocator slack) plus the per-node leaf-domain table and the
    /// per-level link counters.
    pub fn resident_bytes(&self) -> usize {
        self.graph.resident_bytes()
            + self.leaf_of.len() * std::mem::size_of::<DomainId>()
            + self.links_per_level.len() * std::mem::size_of::<usize>()
    }

    /// [`CanonicalNetwork::resident_bytes`] averaged over the node count.
    pub fn resident_bytes_per_node(&self) -> f64 {
        self.resident_bytes() as f64 / self.graph.len().max(1) as f64
    }

    /// Swaps in a different graph without touching the metadata, leaving
    /// the network inconsistent on purpose. Exists so audit tests can model
    /// tampering/corruption; never call it from construction code.
    #[doc(hidden)]
    pub fn replace_graph_for_tests(&mut self, graph: OverlayGraph) {
        self.graph = graph;
    }
}

/// Phase-1 output per node: the flat deduplicated link list plus
/// `(depth, links added)` counters for each level the node's walk visited.
type NodeLinkSet = (Vec<NodeId>, Vec<(u32, u32)>);

/// Builds a Canonical network over `hierarchy`/`placement` with `rule`.
///
/// Nodes keep all links from every level (the paper: "when the two rings
/// are merged, nodes retain all their original links"), so the returned
/// graph is the union of per-level link sets and is routable with the
/// rule's metric.
///
/// Per-node link sets are computed in parallel (thread count from
/// [`canon_par`]); the result is identical for every thread count because
/// each node's randomness is derived from `(seed, node)` alone and the
/// merge is performed in placement order.
///
/// # Panics
///
/// Panics if `placement` is empty.
pub fn build_canonical<R: LinkRule>(
    hierarchy: &Hierarchy,
    placement: &Placement,
    rule: &R,
    seed: Seed,
) -> CanonicalNetwork {
    assert!(
        !placement.is_empty(),
        "cannot build a network with no nodes"
    );
    let members = DomainMembership::build(hierarchy, placement);
    let all = members.ring(hierarchy.root());

    // leaf_of aligned with the (sorted) graph node order.
    let mut leaf_of = vec![hierarchy.root(); all.len()];
    for (id, leaf) in placement.iter() {
        // Every placed id is in the root ring by DomainMembership::build.
        // audit: allow(panic-site)
        let idx = all.index_of(id).expect("placed node is in the root ring");
        leaf_of[idx] = leaf;
    }

    // Phase 1 (parallel): each node's deduplicated link set, flattened,
    // plus `(depth, links added)` counters per level. A link granted at
    // several depths is kept (and counted) at the deepest one, where the
    // walk first produced it — walks run leaf to root. Flattening here
    // means the per-node, per-level link `Vec`s never survive phase 1;
    // only one flat list per node and a handful of counters reach the
    // merge. Pure per node — nothing observes other nodes' work or the
    // iteration order.
    let pairs: Vec<(NodeId, DomainId)> = placement.iter().collect();
    let per_node: Vec<NodeLinkSet> = canon_par::par_map(&pairs, |_, &(id, leaf)| {
        let mut rng = seed.derive_node(id).rng();
        let mut state = R::NodeState::default();
        let mut bound = RingDistance::FULL_CIRCLE;
        let path = hierarchy.path_from_root(leaf);
        let leaf_depth = hierarchy.depth(leaf);
        let mut flat: Vec<NodeId> = Vec::new();
        let mut counts: Vec<(u32, u32)> = Vec::with_capacity(path.len());
        for &domain in path.iter().rev() {
            let ring = members.ring(domain);
            let depth = hierarchy.depth(domain);
            let ctx = LevelCtx {
                depth,
                is_leaf_level: domain == leaf,
                levels_above_leaf: leaf_depth - depth,
            };
            let mut added = 0u32;
            for link in rule.links(ctx, ring, id, bound, &mut rng, &mut state) {
                debug_assert_ne!(link, id, "rules must not emit self-links");
                // Link sets are finger-table sized (~log n), so the
                // linear dedup probe beats hashing here.
                if link != id && !flat.contains(&link) {
                    flat.push(link);
                    added += 1;
                }
            }
            counts.push((depth, added));
            // Condition (b)'s bound for the next (parent) level:
            // distance to the closest node of the ring just processed.
            bound = ring.own_ring_bound(rule.metric(), id);
        }
        (flat, counts)
    });

    // Phase 2 (serial): fold the level counters and scatter each node's
    // flat link list into graph-node order, then build the CSR directly —
    // no hash scratch, identical bytes to inserting serially in placement
    // order.
    let mut links_per_level: Vec<usize> = Vec::new();
    let mut per_index: Vec<Vec<NodeId>> = vec![Vec::new(); all.len()];
    for ((id, _), (flat, counts)) in pairs.iter().zip(per_node) {
        for (depth, added) in counts {
            let d = depth as usize;
            if d >= links_per_level.len() {
                links_per_level.resize(d + 1, 0);
            }
            links_per_level[d] += added as usize;
        }
        // audit: allow(panic-site)
        let idx = all.index_of(*id).expect("placed node is in the root ring");
        per_index[idx] = flat;
    }

    let net = CanonicalNetwork {
        graph: GraphBuilder::from_per_node_links(all.as_slice(), &per_index),
        leaf_of,
        links_per_level,
    };

    // Debug/test builds machine-check the merge invariants on every build;
    // release builds skip the pass (it costs another membership build plus
    // a full link walk). See `crate::audit` for what is verified.
    #[cfg(debug_assertions)]
    {
        let violations = crate::audit::verify_structure(hierarchy, placement, rule.metric(), &net);
        assert!(
            violations.is_empty(),
            "post-build structure audit failed:\n{}",
            violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_id::metric::Clockwise;
    use canon_id::rng::Seed;

    /// A toy rule linking each node to its ring successor when within the
    /// bound — enough to exercise the engine mechanics.
    struct SuccessorRule;

    impl LinkRule for SuccessorRule {
        type M = Clockwise;
        type NodeState = ();

        fn metric(&self) -> Clockwise {
            Clockwise
        }

        fn links(
            &self,
            _ctx: LevelCtx,
            ring: &SortedRing,
            me: NodeId,
            bound: RingDistance,
            _rng: &mut DetRng,
            _state: &mut (),
        ) -> Vec<NodeId> {
            match ring.strict_successor(me) {
                Some(s) if s != me && (me.clockwise_to(s) as u128) < bound.as_u128() => vec![s],
                _ => Vec::new(),
            }
        }
    }

    #[test]
    fn engine_walks_levels_bottom_up() {
        let mut h = Hierarchy::new();
        let a = h.add_domain(h.root(), "a");
        let b = h.add_domain(h.root(), "b");
        let placement = Placement::from_pairs(
            &h,
            vec![
                (NodeId::new(10), a),
                (NodeId::new(30), a),
                (NodeId::new(20), b),
                (NodeId::new(40), b),
            ],
        );
        let net = build_canonical(&h, &placement, &SuccessorRule, Seed(0));
        let g = net.graph();
        // Leaf level: 10 -> 30 (ring a), 30 -> 10; 20 -> 40, 40 -> 20.
        // Merge level: 10's own-ring bound is 20 (to 30); successor in the
        // union is 20 at distance 10 < 20, so 10 -> 20 is added. 30's bound
        // is (wrap) large; successor 40 at distance 10 → added. Node 20's
        // bound is 20 (to 40): successor 30 at distance 10 → added. 40's
        // bound wraps; successor 10 → added.
        let idx = |raw: u64| g.index_of(NodeId::new(raw)).unwrap();
        let has = |x: u64, y: u64| g.neighbors(idx(x)).contains(&idx(y));
        assert!(has(10, 30) && has(10, 20));
        assert!(has(20, 40) && has(20, 30));
        assert!(has(30, 10) && has(30, 40));
        assert!(has(40, 20) && has(40, 10));
        // Instrumentation: 4 leaf links (depth 1), 4 merge links (depth 0).
        assert_eq!(net.links_per_level(), &[4, 4]);
    }

    #[test]
    fn leaf_and_domain_metadata() {
        let mut h = Hierarchy::new();
        let a = h.add_domain(h.root(), "a");
        let b = h.add_domain(h.root(), "b");
        let placement = Placement::from_pairs(&h, vec![(NodeId::new(5), a), (NodeId::new(9), b)]);
        let net = build_canonical(&h, &placement, &SuccessorRule, Seed(0));
        let ia = net.graph().index_of(NodeId::new(5)).unwrap();
        assert_eq!(net.leaf_of(ia), a);
        assert_eq!(net.domain_at_depth(&h, ia, 0), h.root());
        assert_eq!(net.domain_at_depth(&h, ia, 1), a);
        assert_eq!(net.domain_at_depth(&h, ia, 7), a); // clamped
        assert_eq!(net.members_of(&h, a), vec![ia]);
        assert_eq!(net.members_of(&h, h.root()).len(), 2);
    }

    #[test]
    fn singleton_domains_link_freely() {
        // A node alone in its leaf keeps a full-circle bound at the merge,
        // so it gets its successor in the merged ring.
        let mut h = Hierarchy::new();
        let a = h.add_domain(h.root(), "a");
        let b = h.add_domain(h.root(), "b");
        let placement =
            Placement::from_pairs(&h, vec![(NodeId::new(100), a), (NodeId::new(200), b)]);
        let net = build_canonical(&h, &placement, &SuccessorRule, Seed(0));
        let g = net.graph();
        let i100 = g.index_of(NodeId::new(100)).unwrap();
        let i200 = g.index_of(NodeId::new(200)).unwrap();
        assert!(g.neighbors(i100).contains(&i200));
        assert!(g.neighbors(i200).contains(&i100));
    }

    #[test]
    #[should_panic(expected = "no nodes")]
    fn empty_placement_rejected() {
        let h = Hierarchy::balanced(2, 2);
        let placement = Placement::from_pairs(&h, vec![]);
        build_canonical(&h, &placement, &SuccessorRule, Seed(0));
    }

    #[test]
    fn flat_hierarchy_is_single_level() {
        let h = Hierarchy::balanced(10, 1);
        let placement = Placement::uniform(&h, 50, Seed(1));
        let net = build_canonical(&h, &placement, &SuccessorRule, Seed(0));
        // Successor-only rule on a flat hierarchy: a simple cycle.
        assert_eq!(net.graph().link_count(), 50);
        // All 50 links live at the single (leaf = root) level, depth 0.
        assert_eq!(net.links_per_level(), &[50]);
    }

    #[test]
    fn link_counts_sum_to_graph_links() {
        let h = Hierarchy::balanced(3, 3);
        let placement = Placement::uniform(&h, 80, Seed(2));
        let net = build_canonical(&h, &placement, &SuccessorRule, Seed(0));
        let total: usize = net.links_per_level().iter().sum();
        assert_eq!(total, net.graph().link_count());
    }

    #[test]
    fn thread_count_does_not_change_the_graph() {
        let h = Hierarchy::balanced(4, 3);
        let placement = Placement::uniform(&h, 200, Seed(3));
        let serial = canon_par::with_threads(1, || {
            build_canonical(&h, &placement, &SuccessorRule, Seed(9))
        });
        let parallel = canon_par::with_threads(4, || {
            build_canonical(&h, &placement, &SuccessorRule, Seed(9))
        });
        assert_eq!(
            serial.graph().edges().collect::<Vec<_>>(),
            parallel.graph().edges().collect::<Vec<_>>()
        );
        assert_eq!(serial.links_per_level(), parallel.links_per_level());
    }
}
