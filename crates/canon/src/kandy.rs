//! Kandy — the Canonical version of Kademlia (paper §3.3).
//!
//! Each node creates its leaf-level links exactly as Kademlia dictates; at
//! every higher level it applies the Kademlia bucket policy over the merged
//! node set and "throws away any candidate whose distance is larger than
//! the shortest distance link it possesses at the lower level".
//!
//! We interpret that rule **per bucket** (per distance band
//! `[2^k, 2^(k+1))`): a node keeps the link it acquired for a bucket at the
//! lowest level where the bucket was non-empty, and discards higher-level
//! candidates for buckets it already covers — exercising Kademlia's
//! nondeterministic choice in favour of the most local eligible node, the
//! "same caveat as in nondeterministic Crescendo". Two consequences, both
//! matching the paper's claims for Canonical designs:
//!
//! * the out-degree equals flat Kademlia's (one link per globally
//!   non-empty bucket), and
//! * greedy XOR routing is complete *and hierarchical*: the link for the
//!   top differing bit toward any destination inside a domain `D` was
//!   chosen within (an ancestor of) `D`, so intra-domain routes never
//!   leave `D`.
//!
//! A single *global* distance bound (the literal alternative reading) is
//! not viable under XOR: the closest own-ring node is not "on the way" to
//! every destination the way a clockwise successor is, and measured
//! networks built that way strand 20%+ of greedy routes. See DESIGN.md.

use crate::engine::{build_canonical, CanonicalNetwork, LevelCtx, LinkRule};
use canon_hierarchy::{Hierarchy, Placement};
use canon_id::{
    metric::Xor,
    ring::SortedRing,
    rng::{DetRng, Seed},
    NodeId, RingDistance, ID_BITS,
};
use canon_kademlia::BucketChoice;
use rand::Rng;

/// The Kandy link rule: per-bucket, lowest-level-first Kademlia links.
///
/// The buckets a node already filled at lower levels live in the per-node
/// [`LinkRule::NodeState`] bitmap the engine threads through each node's
/// leaf-to-root walk (fresh — all zeros — at the leaf).
#[derive(Clone, Copy, Debug)]
pub struct KandyRule {
    choice: BucketChoice,
}

impl KandyRule {
    /// Creates the rule; `choice` selects deterministic (closest-in-bucket)
    /// or randomized bucket members.
    pub fn new(choice: BucketChoice) -> Self {
        KandyRule { choice }
    }
}

impl LinkRule for KandyRule {
    type M = Xor;
    /// Bitmap of buckets already filled at lower levels.
    type NodeState = u64;

    fn metric(&self) -> Xor {
        Xor
    }

    fn links(
        &self,
        _ctx: LevelCtx,
        ring: &SortedRing,
        me: NodeId,
        _bound: RingDistance,
        rng: &mut DetRng,
        covered: &mut u64,
    ) -> Vec<NodeId> {
        let mut out = Vec::new();
        for k in 0..ID_BITS {
            if *covered & (1u64 << k) != 0 {
                continue; // a lower level already filled this bucket
            }
            let picked = match self.choice {
                BucketChoice::Closest => ring.xor_bucket_closest(me, k),
                BucketChoice::Random => {
                    let bucket = ring.xor_bucket(me, k);
                    if bucket.is_empty() {
                        None
                    } else {
                        Some(bucket[rng.gen_range(0..bucket.len())])
                    }
                }
            };
            if let Some(c) = picked {
                debug_assert_ne!(c, me);
                out.push(c);
                *covered |= 1u64 << k;
            }
        }
        out
    }
}

/// Builds Kandy over `hierarchy`/`placement`.
pub fn build_kandy(
    hierarchy: &Hierarchy,
    placement: &Placement,
    choice: BucketChoice,
    seed: Seed,
) -> CanonicalNetwork {
    build_canonical(
        hierarchy,
        placement,
        &KandyRule::new(choice),
        seed.derive("kandy"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_hierarchy::DomainMembership;
    use canon_id::rng::Seed;
    use canon_kademlia::build_kademlia;
    use canon_overlay::{route, route_with_filter, stats, NodeIndex};
    use rand::Rng;

    fn net(n: usize, levels: u32) -> (Hierarchy, Placement, CanonicalNetwork) {
        let h = Hierarchy::balanced(4, levels);
        let p = Placement::zipf(&h, n, Seed(31));
        let net = build_kandy(&h, &p, BucketChoice::Closest, Seed(32));
        (h, p, net)
    }

    #[test]
    fn one_level_kandy_is_exactly_kademlia() {
        let h = Hierarchy::balanced(10, 1);
        let p = Placement::uniform(&h, 256, Seed(33));
        let net = build_kandy(&h, &p, BucketChoice::Closest, Seed(0));
        let flat = build_kademlia(p.ids(), BucketChoice::Closest, Seed(0));
        assert_eq!(
            net.graph().edges().collect::<Vec<_>>(),
            flat.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn degree_equals_nonempty_global_buckets() {
        let (h, p, net) = net(300, 3);
        let members = DomainMembership::build(&h, &p);
        let root_ring = members.ring(h.root());
        let g = net.graph();
        for i in g.node_indices() {
            let me = g.id(i);
            let nonempty = (0..ID_BITS)
                .filter(|&k| !root_ring.xor_bucket(me, k).is_empty())
                .count();
            assert_eq!(
                g.degree(i),
                nonempty,
                "node {me}: degree != non-empty bucket count"
            );
        }
    }

    #[test]
    fn links_prefer_the_lowest_covering_domain() {
        // The bucket link must come from the lowest ancestor ring where the
        // bucket is non-empty.
        let (h, p, net) = net(300, 3);
        let members = DomainMembership::build(&h, &p);
        let g = net.graph();
        for i in g.node_indices() {
            let me = g.id(i);
            let path = h.path_from_root(net.leaf_of(i));
            for &nb in g.neighbors(i) {
                let other = g.id(nb);
                let d = me.xor_to(other);
                let k = 63 - d.leading_zeros();
                // Find the lowest-level ancestor ring with a non-empty
                // bucket k; the link target must live there.
                let lowest = path
                    .iter()
                    .rev()
                    .find(|&&dom| !members.ring(dom).xor_bucket(me, k).is_empty())
                    .expect("link target itself is in some ancestor ring");
                assert!(
                    members.ring(*lowest).contains(other),
                    "bucket {k} link of {me} skipped domain {lowest}"
                );
            }
        }
    }

    #[test]
    fn routing_succeeds_for_all_pairs() {
        let (_, _, net) = net(500, 3);
        let g = net.graph();
        let mut rng = Seed(34).rng();
        let mut hops = 0usize;
        let mut count = 0usize;
        for _ in 0..600 {
            let a = NodeIndex(rng.gen_range(0..g.len()) as u32);
            let b = NodeIndex(rng.gen_range(0..g.len()) as u32);
            if a == b {
                continue;
            }
            let r = route(g, Xor, a, b).unwrap();
            assert_eq!(r.target(), b);
            hops += r.hops();
            count += 1;
        }
        assert!((hops as f64 / count as f64) < 10.0);
    }

    #[test]
    fn intra_domain_paths_never_leave_the_domain() {
        let (h, _, net) = net(400, 3);
        let g = net.graph();
        let mut rng = Seed(35).rng();
        for d in h.domains_at_depth(1) {
            let members = net.members_of(&h, d);
            if members.len() < 2 {
                continue;
            }
            // audit: membership-only
            let set: std::collections::HashSet<NodeIndex> = members.iter().copied().collect();
            for _ in 0..8 {
                let a = members[rng.gen_range(0..members.len())];
                let b = members[rng.gen_range(0..members.len())];
                if a == b {
                    continue;
                }
                let free = route(g, Xor, a, b).unwrap();
                let fenced = route_with_filter(g, Xor, a, b, |n| set.contains(&n)).unwrap();
                assert_eq!(free, fenced, "route left domain {d}");
            }
        }
    }

    #[test]
    fn degree_is_logarithmic() {
        let (_, _, net) = net(1024, 3);
        let d = stats::DegreeStats::of(net.graph());
        assert!(
            d.summary.mean > 5.0 && d.summary.mean < 14.0,
            "mean degree {}",
            d.summary.mean
        );
    }

    #[test]
    fn random_choice_is_reproducible_and_routable() {
        let h = Hierarchy::balanced(3, 2);
        let p = Placement::uniform(&h, 200, Seed(36));
        let a = build_kandy(&h, &p, BucketChoice::Random, Seed(7));
        let b = build_kandy(&h, &p, BucketChoice::Random, Seed(7));
        assert_eq!(
            a.graph().edges().collect::<Vec<_>>(),
            b.graph().edges().collect::<Vec<_>>()
        );
        let s = stats::hop_stats(a.graph(), Xor, 200, Seed(37)).unwrap();
        assert!(s.mean < 10.0, "mean hops {}", s.mean);
    }
}
