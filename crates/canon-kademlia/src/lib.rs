//! Flat Kademlia (paper §3.3 baseline): XOR-metric bucket links.
//!
//! Kademlia defines the distance between two nodes as the integer value of
//! the XOR of their identifiers. Each node keeps, for every distance band
//! `[2^k, 2^(k+1))` (a *bucket* — the nodes agreeing with it on the top
//! `63 - k` bits and differing at bit `63 - k`), a link to one node of the
//! band. Routing greedily diminishes the XOR distance, fixing identifier
//! bits left to right. (Real Kademlia keeps several links per bucket for
//! resilience; like the paper, we ignore replication here.)
//!
//! The bucket rule is exposed in bounded form ([`kademlia_links_bounded`])
//! for the `canon` crate to assemble Kandy: at higher hierarchy levels a
//! node "throws away any candidate whose distance is larger than the
//! shortest distance link it possesses at the lower level" (§3.3).

#![forbid(unsafe_code)]

use canon_id::{ring::SortedRing, rng::DetRng, NodeId, RingDistance, ID_BITS};
use canon_overlay::{GraphBuilder, OverlayGraph};
use rand::Rng;

/// How a node picks its link within a bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BucketChoice {
    /// The XOR-closest member of the bucket (deterministic; this makes the
    /// link set a pure function of the node set, which Kandy's tests rely
    /// on).
    #[default]
    Closest,
    /// A randomly sampled member (Kademlia's nondeterministic freedom).
    /// Sampling probes a bounded number of random bucket members, falling
    /// back to the closest when none satisfies the distance bound.
    Random,
}

/// The Kademlia link rule over `ring`, restricted to links with XOR
/// distance strictly below `bound`.
///
/// For each bucket `k` with `2^k < bound`, one member at distance `< bound`
/// is linked if such a member exists. With `bound ==
/// RingDistance::FULL_CIRCLE` this is the flat Kademlia rule.
pub fn kademlia_links_bounded(
    ring: &SortedRing,
    me: NodeId,
    bound: RingDistance,
    choice: BucketChoice,
    rng: &mut DetRng,
) -> Vec<NodeId> {
    let mut out = Vec::new();
    for k in 0..ID_BITS {
        if (1u128 << k) >= bound.as_u128() {
            break;
        }
        let picked = match choice {
            BucketChoice::Closest => ring
                .xor_bucket_closest(me, k)
                .filter(|&c| (me.xor_to(c) as u128) < bound.as_u128()),
            BucketChoice::Random => {
                let bucket = ring.xor_bucket(me, k);
                pick_random_in_bucket(bucket, me, bound, rng).or_else(|| {
                    ring.xor_bucket_closest(me, k)
                        .filter(|&c| (me.xor_to(c) as u128) < bound.as_u128())
                })
            }
        };
        if let Some(c) = picked {
            debug_assert_ne!(c, me);
            out.push(c);
        }
    }
    out
}

/// Probes up to eight random members of `bucket` for one whose XOR distance
/// from `me` is below `bound`.
fn pick_random_in_bucket(
    bucket: &[NodeId],
    me: NodeId,
    bound: RingDistance,
    rng: &mut DetRng,
) -> Option<NodeId> {
    if bucket.is_empty() {
        return None;
    }
    for _ in 0..8 {
        let c = bucket[rng.gen_range(0..bucket.len())];
        if c != me && (me.xor_to(c) as u128) < bound.as_u128() {
            return Some(c);
        }
    }
    None
}

/// Builds a flat Kademlia network over `ids`.
///
/// Routable with [`canon_id::metric::Xor`]; greedy routing reaches the
/// exact destination because every non-empty bucket holds a link.
///
/// Each node's bucket sampling draws from an RNG seeded by `(seed, node)`
/// alone ([`canon_id::rng::Seed::derive_node`]), so the graph is a pure
/// function of `(ids, choice, seed)` no matter how many threads compute it.
pub fn build_kademlia(
    ids: &[NodeId],
    choice: BucketChoice,
    seed: canon_id::rng::Seed,
) -> OverlayGraph {
    let ring = SortedRing::new(ids.to_vec());
    let base = seed.derive("kademlia");
    let per_node = canon_par::par_map(ring.as_slice(), |_, &me| {
        let mut rng = base.derive_node(me).rng();
        kademlia_links_bounded(&ring, me, RingDistance::FULL_CIRCLE, choice, &mut rng)
    });
    GraphBuilder::from_per_node_links(ring.as_slice(), &per_node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_id::metric::{Metric, Xor};
    use canon_id::rng::{random_ids, Seed};
    use canon_overlay::{route, stats, NodeIndex};

    #[test]
    fn every_nonempty_bucket_gets_a_link() {
        let ids = random_ids(Seed(1), 200);
        let ring = SortedRing::new(ids);
        let mut rng = Seed(2).rng();
        for &me in ring.as_slice().iter().take(25) {
            let links = kademlia_links_bounded(
                &ring,
                me,
                RingDistance::FULL_CIRCLE,
                BucketChoice::Closest,
                &mut rng,
            );
            for k in 0..ID_BITS {
                let bucket = ring.xor_bucket(me, k);
                let has_link = links.iter().any(|&l| {
                    let d = me.xor_to(l);
                    d >= (1u64 << k) && (k == 63 || d < (1u64 << (k + 1)))
                });
                assert_eq!(!bucket.is_empty(), has_link, "bucket {k} of {me}");
            }
        }
    }

    #[test]
    fn closest_choice_picks_bucket_minimum() {
        let ids = random_ids(Seed(3), 300);
        let ring = SortedRing::new(ids);
        let me = ring.as_slice()[50];
        let mut rng = Seed(4).rng();
        let links = kademlia_links_bounded(
            &ring,
            me,
            RingDistance::FULL_CIRCLE,
            BucketChoice::Closest,
            &mut rng,
        );
        for &l in &links {
            let d = me.xor_to(l);
            let k = 63 - d.leading_zeros();
            let best = ring
                .xor_bucket(me, k)
                .iter()
                .map(|&b| me.xor_to(b))
                .min()
                .unwrap();
            assert_eq!(d, best, "bucket {k} link is not the closest member");
        }
    }

    #[test]
    fn bound_excludes_far_buckets() {
        let ids = random_ids(Seed(5), 300);
        let ring = SortedRing::new(ids);
        let me = ring.as_slice()[10];
        let bound = RingDistance::from_u64(1u64 << 40);
        let mut rng = Seed(6).rng();
        for choice in [BucketChoice::Closest, BucketChoice::Random] {
            let links = kademlia_links_bounded(&ring, me, bound, choice, &mut rng);
            for &l in &links {
                assert!((me.xor_to(l) as u128) < bound.as_u128());
            }
        }
    }

    #[test]
    fn greedy_xor_routing_reaches_every_destination() {
        let ids = random_ids(Seed(7), 256);
        let g = build_kademlia(&ids, BucketChoice::Closest, Seed(8));
        for a in [0usize, 17, 100, 255] {
            for b in [3usize, 42, 200] {
                if a == b {
                    continue;
                }
                let r = route(&g, Xor, NodeIndex(a as u32), NodeIndex(b as u32)).unwrap();
                assert_eq!(r.target(), NodeIndex(b as u32));
                // Each hop fixes at least the top differing bit, so hops are
                // bounded by the bit length of the initial distance.
                let d0 = Xor.distance(g.id(NodeIndex(a as u32)), g.id(NodeIndex(b as u32)));
                assert!(r.hops() as u32 <= 64 - d0.leading_zeros());
            }
        }
    }

    #[test]
    fn random_choice_also_routes() {
        let ids = random_ids(Seed(9), 256);
        let g = build_kademlia(&ids, BucketChoice::Random, Seed(10));
        let s = stats::hop_stats(&g, Xor, 300, Seed(11)).unwrap();
        assert!(s.mean < 10.0, "mean hops {}", s.mean);
    }

    #[test]
    fn hop_count_is_logarithmic() {
        let ids = random_ids(Seed(12), 1024);
        let g = build_kademlia(&ids, BucketChoice::Closest, Seed(13));
        let s = stats::hop_stats(&g, Xor, 500, Seed(14)).unwrap();
        // Expected hops ≈ half the log of n (each hop fixes one of the
        // log2(n) significant prefix bits, often more).
        assert!(s.mean < 8.0, "mean hops {}", s.mean);
        assert!(s.mean > 2.0, "mean hops suspiciously low: {}", s.mean);
    }

    #[test]
    fn degree_is_logarithmic() {
        let n = 1024;
        let g = build_kademlia(&random_ids(Seed(15), n), BucketChoice::Closest, Seed(16));
        let d = stats::DegreeStats::of(&g);
        // Roughly log2(n) non-empty buckets per node.
        assert!(
            d.summary.mean > 7.0 && d.summary.mean < 14.0,
            "mean {}",
            d.summary.mean
        );
    }

    #[test]
    fn closest_construction_is_deterministic() {
        let ids = random_ids(Seed(17), 128);
        let a = build_kademlia(&ids, BucketChoice::Closest, Seed(1));
        let b = build_kademlia(&ids, BucketChoice::Closest, Seed(99));
        // Closest choice ignores the seed entirely.
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn two_node_network_links_mutually() {
        let g = build_kademlia(
            &[NodeId::new(5), NodeId::new(1 << 50)],
            BucketChoice::Closest,
            Seed(0),
        );
        for i in g.node_indices() {
            assert_eq!(g.degree(i), 1);
        }
    }
}
