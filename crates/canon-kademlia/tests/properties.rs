//! Property tests for Kademlia's bucket machinery and routing.

use canon_id::{metric::Xor, ring::SortedRing, rng::Seed, NodeId, RingDistance};
use canon_kademlia::{build_kademlia, kademlia_links_bounded, BucketChoice};
use canon_overlay::{route, NodeIndex};
use proptest::prelude::*;

fn ids_strategy() -> impl Strategy<Value = Vec<NodeId>> {
    proptest::collection::btree_set(any::<u64>(), 2..120)
        .prop_map(|s| s.into_iter().map(NodeId::new).collect())
}

proptest! {
    /// The link set contains exactly one node per non-empty bucket, and the
    /// closest-choice link is the bucket minimum.
    #[test]
    fn one_closest_link_per_nonempty_bucket(ids in ids_strategy()) {
        let ring = SortedRing::new(ids.clone());
        let me = ids[0];
        let mut rng = Seed(1).rng();
        let links = kademlia_links_bounded(
            &ring,
            me,
            RingDistance::FULL_CIRCLE,
            BucketChoice::Closest,
            &mut rng,
        );
        let mut per_bucket = std::collections::HashMap::new();
        for l in &links {
            let k = 63 - me.xor_to(*l).leading_zeros();
            prop_assert!(per_bucket.insert(k, *l).is_none(), "two links in bucket {k}");
        }
        for k in 0..64u32 {
            let bucket_min = ids
                .iter()
                .filter(|&&x| {
                    x != me && {
                        let d = me.xor_to(x);
                        d >= (1u64 << k) && (k == 63 || d < (1u64 << (k + 1)))
                    }
                })
                .map(|&x| me.xor_to(x))
                .min();
            let got = per_bucket.get(&k).map(|&l| me.xor_to(l));
            prop_assert_eq!(got, bucket_min, "bucket {}", k);
        }
    }

    /// Greedy XOR routing reaches every destination on a flat Kademlia.
    #[test]
    fn routing_is_complete(ids in ids_strategy(), seed in any::<u64>()) {
        let g = build_kademlia(&ids, BucketChoice::Closest, Seed(seed));
        let n = g.len();
        for i in 0..n.min(8) {
            let a = NodeIndex(i as u32);
            let b = NodeIndex(((i * 13 + 5) % n) as u32);
            if a == b { continue; }
            let r = route(&g, Xor, a, b);
            prop_assert!(r.is_ok(), "route failed: {:?}", r.err());
            prop_assert_eq!(r.expect("checked").target(), b);
        }
    }

    /// Hop counts are bounded by the bit-length of the initial distance.
    #[test]
    fn hops_bounded_by_distance_bits(ids in ids_strategy()) {
        let g = build_kademlia(&ids, BucketChoice::Closest, Seed(0));
        let n = g.len();
        let a = NodeIndex(0);
        let b = NodeIndex((n - 1) as u32);
        if a != b {
            let d0 = g.id(a).xor_to(g.id(b));
            let r = route(&g, Xor, a, b).expect("complete");
            prop_assert!(r.hops() as u32 <= 64 - d0.leading_zeros());
        }
    }
}
