//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the slice of proptest the workspace's property tests use: the
//! [`Strategy`](strategy::Strategy) trait with `prop_map`, `any`, integer-range and tuple
//! strategies, [`collection::vec`]/[`collection::btree_set`], the
//! `proptest!` macro, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, deliberate for an offline harness:
//!
//! - no shrinking — a failing case reports its case number and the
//!   deterministic per-test seed instead of a minimized input;
//! - case generation is seeded from a hash of the test name, so runs are
//!   reproducible without a persistence file.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

pub mod strategy {
    use rand::distributions::{Distribution, Standard};
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of an associated type.
    ///
    /// Upstream proptest separates strategies from value trees to support
    /// shrinking; this shim only ever needs fresh values.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy returned by [`any`]: uniform over the whole type.
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Strategy for Any<T>
    where
        Standard: Distribution<T>,
    {
        type Value = T;

        fn new_value(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }

    /// A strategy producing any value of `T` (uniformly, for the integer
    /// and float types the workspace uses).
    pub fn any<T>() -> Any<T>
    where
        Standard: Distribution<T>,
    {
        Any(PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec<S::Value>` with length uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with a target size drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `BTreeSet<S::Value>` with size uniform in `size` (best
    /// effort: duplicate draws are retried a bounded number of times).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.size.clone());
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 16 + 64 {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod test_runner {
    /// Per-block configuration, set with `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case's inputs were rejected by `prop_assume!`; it does not
        /// count against the test.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Outcome of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Hashes a test name into a deterministic RNG seed (FNV-1a).
#[doc(hidden)]
pub fn seed_for_test_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Runs `body` against freshly generated inputs until `cases` successes.
#[doc(hidden)]
pub fn run_cases(
    name: &str,
    cases: u32,
    mut body: impl FnMut(&mut StdRng) -> test_runner::TestCaseResult,
) {
    use rand::SeedableRng;
    let seed = seed_for_test_name(name);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u32;
    while passed < cases {
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(test_runner::TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= cases.saturating_mul(32) + 256,
                    "{name}: too many rejected cases ({rejected}) — \
                     prop_assume! conditions are rarely satisfiable"
                );
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!("{name}: case {case} (seed {seed:#x}) failed: {msg}");
            }
        }
        case += 1;
    }
}

/// Declares property tests: each `fn` runs its body against many generated
/// inputs. Mirrors upstream proptest's macro of the same name.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        cfg = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                $crate::run_cases(stringify!($name), cfg.cases, |rng| {
                    $(
                        let $p = $crate::strategy::Strategy::new_value(&($s), rng);
                    )+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Fails the current case with an assertion message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l != *r {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                    stringify!($left), stringify!($right), l, r
                )),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l != *r {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "{} (left: `{:?}`, right: `{:?}`)",
                    format!($($fmt)+), l, r
                )),
            );
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
        let _ = r;
    }};
}

/// Rejects the current case (it is re-drawn) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Commonly imported items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5u64..=9), n in any::<u16>()) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            let _ = n;
        }

        #[test]
        fn map_and_collections(v in crate::collection::vec(0u8..4, 10..60)) {
            prop_assert!((10..60).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn early_return_ok(x in 0u32..100) {
            if x > 50 { return Ok(()); }
            prop_assert!(x <= 50);
        }
    }

    #[test]
    fn btree_set_reaches_target_sizes() {
        use crate::strategy::Strategy;
        use rand::{rngs::StdRng, SeedableRng};
        let s = crate::collection::btree_set(any::<u64>(), 2..100);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let set = s.new_value(&mut rng);
            assert!((2..100).contains(&set.len()));
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failures_panic() {
        crate::run_cases("failures_panic", 4, |_| {
            Err(crate::test_runner::TestCaseError::fail("boom"))
        });
    }
}
