//! Store queries executed over a real overlay graph.
//!
//! [`super::HierarchicalStore`] models §4's protocol at the proxy-node
//! level (exact, thanks to path convergence). This module runs the same
//! queries *hop by hop on the overlay*: the query routes greedily toward
//! the key; every visited node is checked for caches/content/pointers under
//! the current routing level (computed as the LCA of the visited node and
//! the querier, per the paper's footnote 4); the answer cuts the route
//! short. The result carries the actual [`Route`], so experiments can
//! charge hop counts and physical latency to storage and cache traffic.

use crate::content::BlobValue;
use crate::replication::ReplicatedStore;
use crate::{HierarchicalStore, QueryOutcome, StoreError, Via};
use canon_hierarchy::DomainId;
use canon_id::{metric::Clockwise, Key, NodeId};
use canon_overlay::{route_to_key_from, NodeIndex, OverlayGraph, Route};

/// A query answer with its overlay route.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutedOutcome<V> {
    /// The proxy-level outcome (what was found, where, via what).
    pub outcome: QueryOutcome<V>,
    /// The overlay hops actually traveled (truncated at the answering
    /// node for found queries).
    pub route: Route,
    /// Extra hops paid to resolve a pointer indirection (storage-node
    /// round trip), measured as a second route.
    pub indirection: Option<Route>,
}

impl<V> RoutedOutcome<V> {
    /// Total overlay hops, including any pointer resolution round trip
    /// (counted twice: request + response).
    pub fn total_hops(&self) -> usize {
        self.route.hops() + self.indirection.as_ref().map_or(0, |r| 2 * r.hops())
    }

    /// Total latency under `lat`, charging the indirection round trip.
    pub fn total_latency<F: Fn(NodeIndex, NodeIndex) -> f64>(&self, lat: &F) -> f64 {
        self.route.latency(lat)
            + self
                .indirection
                .as_ref()
                .map_or(0.0, |r| 2.0 * r.latency(lat))
    }
}

/// Executes `query_and_cache` against `store` while walking the actual
/// greedy route on `graph`, returning the truncated route alongside the
/// outcome.
///
/// The graph must be a clockwise-metric overlay over the same node
/// population as the store (e.g. Crescendo built from the same placement).
///
/// # Errors
///
/// * [`StoreError::UnknownQuerier`] if the querier is not in the store;
/// * [`StoreError::Routing`] if the querier or answering node is not on
///   the overlay graph, or greedy routing fails (a mismatched graph/store
///   population).
pub fn query_routed<V: Clone + PartialEq>(
    store: &mut HierarchicalStore<V>,
    graph: &OverlayGraph,
    querier: NodeId,
    key: Key,
) -> Result<RoutedOutcome<V>, StoreError> {
    let outcome = store.query_and_cache(querier, key)?;
    let full = route_to_key_from(graph, Clockwise, querier, key.as_point())?;

    let (route, indirection) = match &outcome {
        QueryOutcome::Found {
            answering_node,
            via,
            ..
        } => {
            // Truncate the physical route at the answering node (the
            // query stops there).
            let cut = full
                .path()
                .iter()
                .position(|&i| graph.id(i) == *answering_node)
                .map(|pos| Route::from_path(full.path()[..=pos].to_vec()))
                .unwrap_or(full);
            let indirection = match via {
                Via::Pointer { storage_node } => Some(route_to_key_from(
                    graph,
                    Clockwise,
                    *answering_node,
                    *storage_node,
                )?),
                _ => None,
            };
            (cut, indirection)
        }
        QueryOutcome::NotFound { .. } => (full, None),
    };
    Ok(RoutedOutcome {
        outcome,
        route,
        indirection,
    })
}

/// A policy-driven replicated PUT with its overlay routes.
#[derive(Clone, Debug)]
pub struct ReplicatedPutOutcome {
    /// The responsible node that coordinates the write (first replica).
    pub primary: NodeId,
    /// Every node now holding a copy, primary first (the policy's order).
    pub replicas: Vec<NodeId>,
    /// The writer's route to the primary.
    pub client_route: Route,
    /// The primary's fan-out route to each secondary replica.
    pub fanout: Vec<Route>,
}

impl ReplicatedPutOutcome {
    /// Total overlay hops charged to the write: client route plus every
    /// fan-out route.
    pub fn total_hops(&self) -> usize {
        self.client_route.hops() + self.fanout.iter().map(Route::hops).sum::<usize>()
    }

    /// Total latency under `lat`, charging client route and fan-out.
    pub fn total_latency<F: Fn(NodeIndex, NodeIndex) -> f64>(&self, lat: &F) -> f64 {
        self.client_route.latency(lat) + self.fanout.iter().map(|r| r.latency(lat)).sum::<f64>()
    }
}

/// Executes a replicated PUT against `store` while walking actual overlay
/// routes on `graph`: the writer routes greedily to the key (truncated at
/// the primary replica), then the primary fans the value out to each
/// secondary chosen by the store's [`crate::Policy`]. Experiments can
/// thereby charge replication traffic per policy, not just per write.
///
/// # Errors
///
/// [`StoreError::Routing`] if the writer, primary or a replica is missing
/// from the overlay graph (a mismatched graph/store population).
///
/// # Panics
///
/// Panics (like [`ReplicatedStore::put`]) if the domain has no members.
pub fn put_replicated_routed<V: BlobValue>(
    store: &mut ReplicatedStore<V>,
    graph: &OverlayGraph,
    writer: NodeId,
    key: Key,
    value: V,
    domain: DomainId,
) -> Result<ReplicatedPutOutcome, StoreError> {
    let replicas = store.replica_set_from(writer, key, domain);
    assert!(!replicas.is_empty(), "storage domain has no members");
    let primary = replicas[0];

    let full = route_to_key_from(graph, Clockwise, writer, key.as_point())?;
    let client_route = full
        .path()
        .iter()
        .position(|&i| graph.id(i) == primary)
        .map(|pos| Route::from_path(full.path()[..=pos].to_vec()))
        .unwrap_or(full);

    let mut fanout = Vec::with_capacity(replicas.len().saturating_sub(1));
    for &replica in replicas.iter().skip(1) {
        fanout.push(route_to_key_from(graph, Clockwise, primary, replica)?);
    }

    store.put_from(writer, key, value, domain);
    Ok(ReplicatedPutOutcome {
        primary,
        replicas,
        client_route,
        fanout,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_hierarchy::{Hierarchy, Placement};
    use canon_id::hash::hash_name;
    use canon_id::rng::Seed;

    fn setup() -> (
        Hierarchy,
        Placement,
        OverlayGraph,
        HierarchicalStore<&'static str>,
    ) {
        let h = Hierarchy::balanced(3, 3);
        let p = Placement::uniform(&h, 200, Seed(61));
        // The graph must be hierarchical: only a Canonical overlay routes
        // through the querier's per-level proxies (path convergence), which
        // is what lets the store truncate the route at the answering node.
        let net = canon::crescendo::build_crescendo(&h, &p);
        let g = net.graph().clone();
        let store = HierarchicalStore::new(h.clone(), &p);
        (h, p, g, store)
    }

    #[test]
    fn routed_query_truncates_at_answering_node() {
        let (h, p, g, mut store) = setup();
        let publisher = p.ids()[0];
        let root = h.root();
        let key = hash_name("routed-item");
        let leaf = p.leaf_of(publisher).expect("placed");
        store
            .insert(publisher, key, "v", leaf, root)
            .expect("insert");

        let querier = p.ids()[77];
        let out = query_routed(&mut store, &g, querier, key).expect("query");
        assert!(out.outcome.is_found());
        // The route ends at the node that answered.
        match &out.outcome {
            QueryOutcome::Found { answering_node, .. } => {
                assert_eq!(g.id(out.route.target()), *answering_node);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(out.total_hops() >= out.route.hops());
        let lat = out.total_latency(&|_, _| 1.0);
        assert!((lat - out.total_hops() as f64).abs() < 1e-9);
    }

    #[test]
    fn pointer_resolution_charges_a_round_trip() {
        let (h, p, g, mut store) = setup();
        let root = h.root();
        // Find a publisher and key whose storage node differs from the
        // root-level responsible node, forcing an indirection.
        let mut forced = None;
        for i in 0..p.len() {
            let publisher = p.ids()[i];
            let leaf = p.leaf_of(publisher).expect("placed");
            let key = hash_name(&format!("probe-{i}"));
            let storage = store.responsible_in(key, leaf);
            let global = store.responsible_in(key, root);
            if storage != global {
                store
                    .insert(publisher, key, "far", leaf, root)
                    .expect("insert");
                forced = Some((key, global));
                break;
            }
        }
        let (key, global) = forced.expect("some key forces indirection");
        // Query from a node whose leaf differs from the publisher's.
        let querier = p.ids()[p.len() - 1];
        let out = query_routed(&mut store, &g, querier, key).expect("query");
        match &out.outcome {
            QueryOutcome::Found {
                via,
                answering_node,
                ..
            } => {
                if matches!(via, Via::Pointer { .. }) {
                    assert_eq!(*answering_node, global);
                    let ind = out.indirection.as_ref().expect("pointer pays a round trip");
                    assert!(ind.hops() >= 1);
                    assert!(out.total_hops() > out.route.hops());
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn not_found_routes_to_the_global_responsible() {
        let (h, _p, g, mut store) = setup();
        let querier = g.id(NodeIndex(0));
        let key = hash_name("missing");
        let out = query_routed(&mut store, &g, querier, key).expect("query");
        assert!(!out.outcome.is_found());
        assert_eq!(
            g.id(out.route.target()),
            store.responsible_in(key, h.root()),
            "a miss must travel to the root-level responsible node"
        );
        assert!(out.indirection.is_none());
    }

    #[test]
    fn replicated_put_routes_charge_the_fanout() {
        use crate::policy::Policy;
        let h = Hierarchy::balanced(3, 2);
        let p = Placement::uniform(&h, 150, Seed(62));
        let net = canon::crescendo::build_crescendo(&h, &p);
        let g = net.graph().clone();
        let mut store: ReplicatedStore<u64> = ReplicatedStore::new(h.clone(), &p, Policy::Fixed(3));
        let writer = p.ids()[11];
        let key = hash_name("fanned-out");
        let out = put_replicated_routed(&mut store, &g, writer, key, 4096, h.root()).expect("put");
        assert_eq!(out.replicas, store.replica_set_from(writer, key, h.root()));
        assert_eq!(out.replicas[0], out.primary);
        assert_eq!(out.fanout.len(), out.replicas.len() - 1);
        // Each fan-out route actually ends at its replica.
        for (route, &replica) in out.fanout.iter().zip(out.replicas.iter().skip(1)) {
            assert_eq!(g.id(route.target()), replica);
        }
        assert!(out.total_hops() >= out.fanout.len());
        let lat = out.total_latency(&|_, _| 1.0);
        assert!((lat - out.total_hops() as f64).abs() < 1e-9);
        // And the value is durably readable through the store.
        assert_eq!(store.get(key, h.root()).expect("readable").0, 4096);
    }

    #[test]
    fn repeat_queries_hit_caches_and_shorten_routes() {
        let (h, p, g, mut store) = setup();
        let publisher = p.ids()[3];
        let leaf = p.leaf_of(publisher).expect("placed");
        let key = hash_name("hot-item");
        store
            .insert(publisher, key, "hot", leaf, h.root())
            .expect("insert");
        // A querier in a different depth-1 branch, so the first answer
        // arrives above its leaf and leaves cache entries below.
        let querier = p
            .iter()
            .find(|(_, l)| h.ancestor_at_depth(*l, 1) != h.ancestor_at_depth(leaf, 1))
            .map(|(id, _)| id)
            .expect("another branch has members");
        let first = query_routed(&mut store, &g, querier, key).expect("query");
        let second = query_routed(&mut store, &g, querier, key).expect("query");
        // The second query is served from a cache at or below the first
        // answer level, so it cannot travel farther.
        assert!(second.total_hops() <= first.total_hops());
        match &second.outcome {
            QueryOutcome::Found { via, .. } => assert_eq!(*via, Via::Cache),
            other => panic!("unexpected {other:?}"),
        }
    }
}
