//! Policy-driven replication within storage domains.
//!
//! The paper keeps leaf sets "to deal with node deletions" (§2.3); the
//! storage systems built on Chord-family DHTs (CFS and successors) use the
//! same successor lists to *replicate content*. This module layers that
//! idea over the hierarchical store's placement rule, with two PR-6
//! generalisations:
//!
//! * **where** replicas go is decided by a [`Policy`] (see
//!   [`crate::policy`]) instead of a hard-wired factor — replicas are still
//!   always chosen **within the storage domain**, preserving Canon's
//!   guarantee that domain-scoped content never leaves the domain;
//! * **how** replicas are held is a [`StorageBackend`] per node (see
//!   [`crate::backend`]) — every node in a replica set keeps its copy in
//!   its own content-addressed shard, so integrity and dedup come from the
//!   backend layer rather than this one.

use crate::backend::{BackendKind, StorageBackend, Usage};
use crate::content::BlobValue;
use crate::policy::{PlacementCtx, Policy, ReplicationPolicy};
use canon_hierarchy::{DomainId, DomainMembership, Hierarchy, Placement};
use canon_id::hash::hash_bytes;
use canon_id::ring::SortedRing;
use canon_id::{Key, NodeId};
use std::collections::{HashMap, HashSet};
use std::marker::PhantomData;

/// The single abort point of the replica-shard I/O policy: a backend
/// failure mid-placement leaves replicas and placements out of step, which
/// no caller can repair — so, like the shard I/O policy in canon-node and
/// the poisoned-lock policy behind it, the documented policy is one
/// labeled abort here rather than `Result` plumbing through the placement
/// engine. The in-memory backend (the default) is infallible.
fn store_io<T>(result: Result<T, crate::BackendError>, what: &str) -> T {
    // audit: allow(panic-site) — the documented replica-shard I/O abort policy.
    result.unwrap_or_else(|e| panic!("replica shard {what} failed: {e}"))
}

/// The backend slot a `(key, domain)` item occupies in a node's shard:
/// domain-qualified so the same key stored in two domains keeps two
/// independent entries.
fn slot(key: Key, domain: DomainId) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&key.raw().to_le_bytes());
    bytes[8..].copy_from_slice(&(domain.index() as u64).to_le_bytes());
    hash_bytes(&bytes).raw()
}

/// A replicated, domain-scoped key-value store.
///
/// This intentionally models just placement and availability (the subjects
/// of the §2.3 fault-tolerance argument); access control and caching layers
/// live in [`crate::HierarchicalStore`].
#[derive(Debug)]
pub struct ReplicatedStore<V> {
    hierarchy: Hierarchy,
    membership: DomainMembership,
    policy: Policy,
    backend_kind: BackendKind,
    /// Per-node content-addressed shards, created on first write.
    shards: HashMap<NodeId, Box<dyn StorageBackend>>,
    /// Replica holders per (key, storage domain).
    placements: HashMap<(Key, DomainId), Vec<NodeId>>,
    /// The writing node's leaf domain per item (anchors geo constraints).
    writers: HashMap<(Key, DomainId), DomainId>,
    leaf_of: HashMap<NodeId, DomainId>,
    dead: HashSet<NodeId>,
    _values: PhantomData<V>,
}

impl<V: BlobValue> ReplicatedStore<V> {
    /// Creates a store placing replicas per `policy`, with in-memory
    /// shards.
    ///
    /// # Panics
    ///
    /// Panics if the policy is `Fixed(0)`.
    pub fn new(hierarchy: Hierarchy, placement: &Placement, policy: Policy) -> Self {
        Self::with_backend(hierarchy, placement, policy, BackendKind::Memory)
    }

    /// Creates a store whose per-node shards use `backend_kind`.
    pub fn with_backend(
        hierarchy: Hierarchy,
        placement: &Placement,
        policy: Policy,
        backend_kind: BackendKind,
    ) -> Self {
        if let Policy::Fixed(k) = policy {
            assert!(k >= 1, "replication factor must be at least 1");
        }
        let membership = DomainMembership::build(&hierarchy, placement);
        let leaf_of = placement.iter().collect();
        ReplicatedStore {
            hierarchy,
            membership,
            policy,
            backend_kind,
            shards: HashMap::new(),
            placements: HashMap::new(),
            writers: HashMap::new(),
            leaf_of,
            dead: HashSet::new(),
            _values: PhantomData,
        }
    }

    /// The placement policy in force.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    fn shard_mut(&mut self, node: NodeId) -> &mut Box<dyn StorageBackend> {
        let kind = &self.backend_kind;
        self.shards.entry(node).or_insert_with(|| {
            store_io(
                kind.create(&format!("shard-{:016x}", node.raw())),
                "creation",
            )
        })
    }

    fn ctx<'a>(
        &'a self,
        domain: DomainId,
        ring: &'a SortedRing,
        writer: Option<NodeId>,
    ) -> PlacementCtx<'a> {
        PlacementCtx {
            hierarchy: &self.hierarchy,
            membership: &self.membership,
            domain,
            ring,
            writer_leaf: writer.and_then(|w| self.leaf_of.get(&w).copied()),
        }
    }

    /// The replica set for `key` in `domain` under the configured policy,
    /// unanchored (no writer, so geo constraints are vacuous).
    pub fn replica_set(&self, key: Key, domain: DomainId) -> Vec<NodeId> {
        let ring = self.membership.ring(domain);
        self.policy.replicas(&self.ctx(domain, ring, None), key)
    }

    /// The replica set for `key` in `domain` as placed for `writer` (geo
    /// policies anchor their "outside" constraint at the writer's leaf).
    pub fn replica_set_from(&self, writer: NodeId, key: Key, domain: DomainId) -> Vec<NodeId> {
        let ring = self.membership.ring(domain);
        self.policy
            .replicas(&self.ctx(domain, ring, Some(writer)), key)
    }

    /// Stores `value` under `key` within `domain`, unanchored.
    ///
    /// # Panics
    ///
    /// Panics if the domain has no members.
    pub fn put(&mut self, key: Key, value: V, domain: DomainId) {
        self.store(None, key, value, domain);
    }

    /// Stores `value` under `key` within `domain` on behalf of `writer`.
    ///
    /// # Panics
    ///
    /// Panics if the domain has no members.
    pub fn put_from(&mut self, writer: NodeId, key: Key, value: V, domain: DomainId) {
        self.store(Some(writer), key, value, domain);
    }

    fn store(&mut self, writer: Option<NodeId>, key: Key, value: V, domain: DomainId) {
        let ring = self.membership.ring(domain);
        let replicas = self.policy.replicas(&self.ctx(domain, ring, writer), key);
        assert!(!replicas.is_empty(), "storage domain has no members");
        let bytes = value.to_bytes();
        let at = slot(key, domain);
        for &node in &replicas {
            let write = self.shard_mut(node).put(at, &bytes);
            store_io(write, "write");
        }
        self.placements.insert((key, domain), replicas);
        match writer.and_then(|w| self.leaf_of.get(&w).copied()) {
            Some(leaf) => self.writers.insert((key, domain), leaf),
            None => self.writers.remove(&(key, domain)),
        };
    }

    /// Marks `node` as crashed; items whose live replica set becomes empty
    /// turn unavailable.
    pub fn crash(&mut self, node: NodeId) {
        self.dead.insert(node);
    }

    /// Fetches `key` from `domain`: succeeds iff some replica is alive,
    /// returning the value (read and integrity-verified from the serving
    /// replica's backend) and the serving replica.
    pub fn get(&mut self, key: Key, domain: DomainId) -> Option<(V, NodeId)> {
        let holders = self.placements.get(&(key, domain))?;
        let server = holders.iter().copied().find(|n| !self.dead.contains(n))?;
        let at = slot(key, domain);
        let stored = store_io(self.shards.get_mut(&server)?.get(at), "verified read")?;
        // Content addressing already verified the bytes, so a decode
        // failure is stored-type confusion — the abort policy applies.
        let Some(value) = V::from_bytes(&stored.bytes) else {
            // audit: allow(panic-site) — the documented replica-shard I/O abort policy.
            panic!("replica bytes for key {:#018x} do not decode", key.raw())
        };
        Some((value, server))
    }

    /// Fraction of stored items still reachable (≥ 1 live replica).
    pub fn availability(&self) -> f64 {
        if self.placements.is_empty() {
            return 1.0;
        }
        let alive = self
            .placements
            .values()
            .filter(|holders| holders.iter().any(|n| !self.dead.contains(n)))
            .count();
        alive as f64 / self.placements.len() as f64
    }

    /// The members of `domain` that are still alive, as a ring.
    fn live_ring(&self, domain: DomainId) -> SortedRing {
        let live: Vec<NodeId> = self
            .membership
            .ring(domain)
            .as_slice()
            .iter()
            .copied()
            .filter(|n| !self.dead.contains(n))
            .collect();
        SortedRing::new(live)
    }

    /// Re-replicates every degraded item onto the policy's placement over
    /// the live members of its storage domain (the repair that leaf-set
    /// change notifications trigger in a live system). Copies bytes from a
    /// surviving replica into each fresh holder's backend and returns the
    /// number of copies created.
    pub fn re_replicate(&mut self) -> usize {
        let mut copies = 0usize;
        let keys: Vec<(Key, DomainId)> = self.placements.keys().copied().collect();
        for (key, domain) in keys {
            let holders = self.placements[&(key, domain)].clone();
            if !holders.iter().any(|n| self.dead.contains(n)) {
                continue;
            }
            // Only items with a surviving copy can be repaired.
            let Some(source) = holders.iter().copied().find(|n| !self.dead.contains(n)) else {
                continue;
            };
            let live = self.live_ring(domain);
            let writer_leaf = self.writers.get(&(key, domain)).copied();
            let fresh = self.policy.replicas(
                &PlacementCtx {
                    hierarchy: &self.hierarchy,
                    membership: &self.membership,
                    domain,
                    ring: &live,
                    writer_leaf,
                },
                key,
            );
            if fresh.is_empty() {
                continue;
            }
            let at = slot(key, domain);
            let stored = self
                .shards
                .get_mut(&source)
                .and_then(|s| store_io(s.get(at), "verified read"))
                // `source` was chosen among live holders above.
                // audit: allow(panic-site) — the documented replica-shard I/O abort policy.
                .expect("surviving replica holds the bytes");
            for &node in &fresh {
                if !holders.contains(&node) {
                    copies += 1;
                }
                let write = self.shard_mut(node).put(at, &stored.bytes);
                store_io(write, "repair write");
            }
            // Retired live holders drop their copy so usage stays honest.
            let retired = holders
                .iter()
                .filter(|n| !self.dead.contains(n) && !fresh.contains(n));
            for &node in retired {
                if let Some(shard) = self.shards.get_mut(&node) {
                    store_io(shard.delete(at), "retire");
                }
            }
            self.placements.insert((key, domain), fresh);
        }
        copies
    }

    /// Whether every replica of every item lies inside its storage domain
    /// (the Canon containment invariant, checked in tests).
    pub fn replicas_respect_domains(&self) -> bool {
        self.placements.iter().all(|(&(_, domain), holders)| {
            holders
                .iter()
                .all(|&n| self.membership.ring(domain).contains(n))
        })
    }

    /// Every stored item whose live replica set fails its policy — count,
    /// containment, or geo clause — described one line per violation, in
    /// deterministic (key, domain) order. Empty means the storage
    /// invariant holds; this is what `canon-audit verify` probes.
    pub fn policy_violations(&self) -> Vec<String> {
        let mut items: Vec<(Key, DomainId)> = self.placements.keys().copied().collect();
        items.sort_unstable();
        let mut out = Vec::new();
        for (key, domain) in items {
            let live: Vec<NodeId> = self.placements[&(key, domain)]
                .iter()
                .copied()
                .filter(|n| !self.dead.contains(n))
                .collect();
            let ring = self.live_ring(domain);
            let ctx = PlacementCtx {
                hierarchy: &self.hierarchy,
                membership: &self.membership,
                domain,
                ring: &ring,
                writer_leaf: self.writers.get(&(key, domain)).copied(),
            };
            if !self.policy.satisfied(&ctx, key, &live) {
                out.push(format!(
                    "{key} in {domain}: live replicas {live:?} violate {}",
                    self.policy.name()
                ));
            }
        }
        out
    }

    /// Space accounting aggregated over every node shard.
    pub fn usage(&self) -> Usage {
        self.shards
            .values()
            .map(|s| s.usage())
            .fold(Usage::default(), Usage::merged)
    }

    /// The hierarchy this store spans.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// The per-domain membership rings the store places replicas on.
    pub fn membership(&self) -> &DomainMembership {
        &self.membership
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_id::hash::hash_name;
    use canon_id::rng::Seed;
    use rand::Rng;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn setup(r: usize) -> (Hierarchy, Placement, ReplicatedStore<String>) {
        let h = Hierarchy::balanced(3, 3);
        let p = Placement::uniform(&h, 300, Seed(71));
        let store = ReplicatedStore::new(h.clone(), &p, Policy::Fixed(r));
        (h, p, store)
    }

    #[test]
    fn replica_sets_are_successor_runs_inside_the_domain() {
        let (h, _, store) = setup(3);
        let d = h.domains_at_depth(1)[0];
        let key = hash_name("replicated-item");
        let rs = store.replica_set(key, d);
        assert_eq!(rs.len(), 3);
        let mut dedup = rs;
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "replicas must be distinct");
        assert!(store.replicas_respect_domains());
    }

    #[test]
    fn get_survives_replica_crashes_until_the_last() {
        let (h, _, mut store) = setup(3);
        let d = h.domains_at_depth(1)[0];
        let key = hash_name("survivor");
        store.put(key, "v".into(), d);
        let rs = store.replica_set(key, d);
        store.crash(rs[0]);
        assert!(
            store.get(key, d).is_some(),
            "one crash must not lose the item"
        );
        store.crash(rs[1]);
        let (v, server) = store.get(key, d).expect("last replica serves");
        assert_eq!(v, "v");
        assert_eq!(server, rs[2]);
        store.crash(rs[2]);
        assert!(store.get(key, d).is_none(), "all replicas dead");
    }

    #[test]
    fn availability_grows_with_replication() {
        let mut rng = Seed(72).rng();
        let mut avail = Vec::new();
        for r in [1usize, 2, 4] {
            let (h, p, mut store) = setup(r);
            let root = h.root();
            for i in 0..300 {
                store.put(hash_name(&format!("k{i}")), format!("v{i}"), root);
            }
            // Crash 30% of all nodes.
            let ids = p.ids().to_vec();
            for _ in 0..90 {
                store.crash(ids[rng.gen_range(0..ids.len())]);
            }
            avail.push(store.availability());
        }
        assert!(
            avail[0] < avail[1] && avail[1] <= avail[2],
            "availability {avail:?}"
        );
        assert!(avail[2] > 0.97, "r=4 availability {}", avail[2]);
    }

    #[test]
    fn re_replication_restores_full_strength() {
        let (h, _, mut store) = setup(3);
        let d = h.domains_at_depth(1)[0];
        let key = hash_name("healed");
        store.put(key, "v".into(), d);
        let rs = store.replica_set(key, d);
        store.crash(rs[0]);
        store.crash(rs[1]);
        let copies = store.re_replicate();
        assert!(copies >= 1, "repair must create copies");
        assert!(store.replicas_respect_domains());
        assert!(
            store.policy_violations().is_empty(),
            "repair satisfies policy"
        );
        // The item now survives the death of its last original holder.
        store.crash(rs[2]);
        assert!(
            store.get(key, d).is_some(),
            "re-replication must restore resilience"
        );
    }

    #[test]
    fn lost_items_stay_lost_after_repair() {
        let (h, _, mut store) = setup(2);
        let d = h.domains_at_depth(1)[0];
        let key = hash_name("doomed");
        store.put(key, "v".into(), d);
        for n in store.replica_set(key, d) {
            store.crash(n);
        }
        store.re_replicate();
        assert!(
            store.get(key, d).is_none(),
            "repair cannot resurrect lost data"
        );
    }

    #[test]
    fn tiny_domains_cap_the_replica_count() {
        let mut h = Hierarchy::new();
        let a = h.add_domain(h.root(), "a");
        let p = Placement::from_pairs(&h, vec![(NodeId::new(1), a), (NodeId::new(2), a)]);
        let store: ReplicatedStore<u8> = ReplicatedStore::new(h, &p, Policy::Fixed(5));
        let rs = store.replica_set(hash_name("x"), a);
        assert_eq!(rs.len(), 2, "cannot place more replicas than members");
    }

    #[test]
    fn geo_policy_keeps_a_replica_outside_the_writer_region() {
        let h = Hierarchy::balanced(3, 2);
        let p = Placement::uniform(&h, 150, Seed(73));
        let mut store: ReplicatedStore<u64> = ReplicatedStore::new(
            h.clone(),
            &p,
            Policy::HierarchyGeo {
                replication: 3,
                min_outside_level: 1,
            },
        );
        let m = DomainMembership::build(&h, &p);
        for i in 0..30 {
            let writer = p.ids()[(i * 13) % p.len()];
            let home = h.ancestor_at_depth(p.leaf_of(writer).expect("placed"), 1);
            let key = hash_name(&format!("geo-{i}"));
            store.put_from(writer, key, i as u64, h.root());
            let holders = store.replica_set_from(writer, key, h.root());
            assert!(
                holders.iter().any(|&n| !m.ring(home).contains(n)),
                "no replica escaped {home}"
            );
        }
        assert!(store.policy_violations().is_empty());
        // The geo constraint survives repair too.
        let victims: Vec<NodeId> = p.ids().iter().copied().step_by(7).take(20).collect();
        for v in victims {
            store.crash(v);
        }
        store.re_replicate();
        assert!(
            store.policy_violations().is_empty(),
            "repair must re-satisfy the geo clause"
        );
    }

    #[test]
    fn percent_policy_scales_counts_by_domain_population() {
        let h = Hierarchy::balanced(4, 2);
        let p = Placement::uniform(&h, 200, Seed(74));
        let store: ReplicatedStore<u64> = ReplicatedStore::new(
            h.clone(),
            &p,
            Policy::PercentOfDomain {
                level: 1,
                percent: 0.1,
            },
        );
        let m = DomainMembership::build(&h, &p);
        for d in h.domains_at_depth(1) {
            let rs = store.replica_set(hash_name("sized"), d);
            let want = ((0.1 * m.size(d) as f64).ceil() as usize).max(1);
            assert_eq!(rs.len(), want.min(m.size(d)), "count in {d}");
        }
    }

    #[test]
    fn values_roundtrip_through_file_shards() {
        static DIR: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "canon-store-repl-{}-{}",
            std::process::id(),
            DIR.fetch_add(1, Ordering::Relaxed)
        ));
        let h = Hierarchy::balanced(2, 2);
        let p = Placement::uniform(&h, 60, Seed(75));
        let mut store: ReplicatedStore<String> = ReplicatedStore::with_backend(
            h.clone(),
            &p,
            Policy::Fixed(3),
            BackendKind::File { dir: dir.clone() },
        );
        let key = hash_name("durable");
        store.put(key, "on disk".into(), h.root());
        let (v, _) = store.get(key, h.root()).expect("readable");
        assert_eq!(v, "on disk");
        let u = store.usage();
        assert_eq!(u.keys, 3, "one entry per replica shard");
        assert_eq!(u.blobs, 3, "blobs dedup within, not across, shards");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dedup_collapses_identical_values_within_a_shard() {
        let h = Hierarchy::balanced(2, 1);
        let p = Placement::uniform(&h, 8, Seed(76));
        let mut store: ReplicatedStore<String> =
            ReplicatedStore::new(h.clone(), &p, Policy::Fixed(8));
        // With replication = population, every node holds every item; 40
        // keys share one value, so each shard stores the bytes once.
        for i in 0..40 {
            store.put(
                hash_name(&format!("dup-{i}")),
                "same bytes".into(),
                h.root(),
            );
        }
        let u = store.usage();
        assert_eq!(u.keys, 40 * 8);
        assert_eq!(u.blobs, 8, "one physical blob per shard");
        assert!(u.unique_bytes < u.logical_bytes);
    }
}
