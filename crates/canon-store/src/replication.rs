//! Successor replication within storage domains.
//!
//! The paper keeps leaf sets "to deal with node deletions" (§2.3); the
//! storage systems built on Chord-family DHTs (CFS and successors) use the
//! same successor lists to *replicate content*: a key-value pair lives on
//! the responsible node and its `r − 1` ring successors, so a lookup can be
//! served as long as one replica survives. This module adds that layer on
//! top of the hierarchical store's placement rule — replicas are chosen
//! **within the storage domain**, preserving Canon's guarantee that
//! domain-scoped content never leaves the domain.

use canon_hierarchy::{DomainId, DomainMembership, Hierarchy, Placement};
use canon_id::ring::SortedRing;
use canon_id::{Key, NodeId};
use std::collections::{HashMap, HashSet};

/// The successor-replication placement rule on a bare ring: the node
/// responsible for `point` plus its distinct ring successors, capped at
/// `replication` nodes (and at the ring size).
///
/// This is the pure core of [`ReplicatedStore::replica_set`], exposed so
/// other systems placing replicas on a ring — notably the `canon-node`
/// live runtime — provably share the same rule.
pub fn replica_successors(ring: &SortedRing, point: NodeId, replication: usize) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(replication);
    let Some(first) = ring.responsible(point) else {
        return out;
    };
    let mut cur = first;
    for _ in 0..replication.min(ring.len()) {
        out.push(cur);
        cur = ring.strict_successor(cur).expect("ring is nonempty");
        if cur == first {
            break;
        }
    }
    out
}

/// A replicated, domain-scoped key-value store.
///
/// This intentionally models just placement and availability (the subjects
/// of the §2.3 fault-tolerance argument); access control and caching layers
/// live in [`crate::HierarchicalStore`].
#[derive(Clone, Debug)]
pub struct ReplicatedStore<V> {
    hierarchy: Hierarchy,
    membership: DomainMembership,
    replication: usize,
    /// Replica holders per (key, storage domain).
    placements: HashMap<(Key, DomainId), Vec<NodeId>>,
    values: HashMap<(Key, DomainId), V>,
    dead: HashSet<NodeId>,
}

impl<V: Clone> ReplicatedStore<V> {
    /// Creates a store replicating each item on `replication` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `replication == 0`.
    pub fn new(hierarchy: Hierarchy, placement: &Placement, replication: usize) -> Self {
        assert!(replication >= 1, "replication factor must be at least 1");
        let membership = DomainMembership::build(&hierarchy, placement);
        ReplicatedStore {
            hierarchy,
            membership,
            replication,
            placements: HashMap::new(),
            values: HashMap::new(),
            dead: HashSet::new(),
        }
    }

    /// The configured replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The replica set for `key` in `domain`: the responsible node and its
    /// ring successors *within the domain*, capped at the domain size.
    pub fn replica_set(&self, key: Key, domain: DomainId) -> Vec<NodeId> {
        let ring = self.membership.ring(domain);
        replica_successors(ring, key.as_point(), self.replication)
    }

    /// Stores `value` under `key` within `domain`.
    ///
    /// # Panics
    ///
    /// Panics if the domain has no members.
    pub fn put(&mut self, key: Key, value: V, domain: DomainId) {
        let replicas = self.replica_set(key, domain);
        assert!(!replicas.is_empty(), "storage domain has no members");
        self.placements.insert((key, domain), replicas);
        self.values.insert((key, domain), value);
    }

    /// Marks `node` as crashed; items whose live replica set becomes empty
    /// turn unavailable.
    pub fn crash(&mut self, node: NodeId) {
        self.dead.insert(node);
    }

    /// Fetches `key` from `domain`: succeeds iff some replica is alive,
    /// returning the value and the serving replica.
    pub fn get(&self, key: Key, domain: DomainId) -> Option<(V, NodeId)> {
        let holders = self.placements.get(&(key, domain))?;
        let server = holders.iter().copied().find(|n| !self.dead.contains(n))?;
        Some((self.values.get(&(key, domain))?.clone(), server))
    }

    /// Fraction of stored items still reachable (≥ 1 live replica).
    pub fn availability(&self) -> f64 {
        if self.placements.is_empty() {
            return 1.0;
        }
        let alive = self
            .placements
            .values()
            .filter(|holders| holders.iter().any(|n| !self.dead.contains(n)))
            .count();
        alive as f64 / self.placements.len() as f64
    }

    /// Re-replicates every degraded item onto the live successors of its
    /// storage domain (the repair that leaf-set change notifications
    /// trigger in a live system). Returns the number of copies created.
    pub fn re_replicate(&mut self) -> usize {
        let mut copies = 0usize;
        let keys: Vec<(Key, DomainId)> = self.placements.keys().copied().collect();
        for (key, domain) in keys {
            let holders = &self.placements[&(key, domain)];
            if holders.iter().any(|n| self.dead.contains(n)) {
                // Walk live members of the domain from the responsible node.
                let ring = self.membership.ring(domain);
                let mut fresh = Vec::with_capacity(self.replication);
                if let Some(first) = ring.responsible(key.as_point()) {
                    let mut cur = first;
                    for _ in 0..ring.len() {
                        if !self.dead.contains(&cur) {
                            fresh.push(cur);
                            if fresh.len() == self.replication {
                                break;
                            }
                        }
                        cur = ring.strict_successor(cur).expect("nonempty ring");
                        if cur == first {
                            break;
                        }
                    }
                }
                // Only items with a surviving copy can be repaired.
                let survived = holders.iter().any(|n| !self.dead.contains(n));
                if survived && !fresh.is_empty() {
                    copies += fresh.iter().filter(|n| !holders.contains(n)).count();
                    self.placements.insert((key, domain), fresh);
                }
            }
        }
        copies
    }

    /// Whether every replica of every item lies inside its storage domain
    /// (the Canon containment invariant, checked in tests).
    pub fn replicas_respect_domains(&self) -> bool {
        self.placements.iter().all(|(&(_, domain), holders)| {
            holders
                .iter()
                .all(|&n| self.membership.ring(domain).contains(n))
        })
    }

    /// The hierarchy this store spans.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_id::hash::hash_name;
    use canon_id::rng::Seed;
    use rand::Rng;

    fn setup(r: usize) -> (Hierarchy, Placement, ReplicatedStore<String>) {
        let h = Hierarchy::balanced(3, 3);
        let p = Placement::uniform(&h, 300, Seed(71));
        let store = ReplicatedStore::new(h.clone(), &p, r);
        (h, p, store)
    }

    #[test]
    fn replica_sets_are_successor_runs_inside_the_domain() {
        let (h, _, store) = setup(3);
        let d = h.domains_at_depth(1)[0];
        let key = hash_name("replicated-item");
        let rs = store.replica_set(key, d);
        assert_eq!(rs.len(), 3);
        let mut dedup = rs;
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3, "replicas must be distinct");
        assert!(store.replicas_respect_domains());
    }

    #[test]
    fn get_survives_replica_crashes_until_the_last() {
        let (h, _, mut store) = setup(3);
        let d = h.domains_at_depth(1)[0];
        let key = hash_name("survivor");
        store.put(key, "v".into(), d);
        let rs = store.replica_set(key, d);
        store.crash(rs[0]);
        assert!(
            store.get(key, d).is_some(),
            "one crash must not lose the item"
        );
        store.crash(rs[1]);
        let (v, server) = store.get(key, d).expect("last replica serves");
        assert_eq!(v, "v");
        assert_eq!(server, rs[2]);
        store.crash(rs[2]);
        assert!(store.get(key, d).is_none(), "all replicas dead");
    }

    #[test]
    fn availability_grows_with_replication() {
        let mut rng = Seed(72).rng();
        let mut avail = Vec::new();
        for r in [1usize, 2, 4] {
            let (h, p, mut store) = setup(r);
            let root = h.root();
            for i in 0..300 {
                store.put(hash_name(&format!("k{i}")), format!("v{i}"), root);
            }
            // Crash 30% of all nodes.
            let ids = p.ids().to_vec();
            for _ in 0..90 {
                store.crash(ids[rng.gen_range(0..ids.len())]);
            }
            avail.push(store.availability());
        }
        assert!(
            avail[0] < avail[1] && avail[1] <= avail[2],
            "availability {avail:?}"
        );
        assert!(avail[2] > 0.97, "r=4 availability {}", avail[2]);
    }

    #[test]
    fn re_replication_restores_full_strength() {
        let (h, _, mut store) = setup(3);
        let d = h.domains_at_depth(1)[0];
        let key = hash_name("healed");
        store.put(key, "v".into(), d);
        let rs = store.replica_set(key, d);
        store.crash(rs[0]);
        store.crash(rs[1]);
        let copies = store.re_replicate();
        assert!(copies >= 1, "repair must create copies");
        assert!(store.replicas_respect_domains());
        // The item now survives the death of its last original holder.
        store.crash(rs[2]);
        assert!(
            store.get(key, d).is_some(),
            "re-replication must restore resilience"
        );
    }

    #[test]
    fn lost_items_stay_lost_after_repair() {
        let (h, _, mut store) = setup(2);
        let d = h.domains_at_depth(1)[0];
        let key = hash_name("doomed");
        store.put(key, "v".into(), d);
        for n in store.replica_set(key, d) {
            store.crash(n);
        }
        store.re_replicate();
        assert!(
            store.get(key, d).is_none(),
            "repair cannot resurrect lost data"
        );
    }

    #[test]
    fn tiny_domains_cap_the_replica_count() {
        let mut h = Hierarchy::new();
        let a = h.add_domain(h.root(), "a");
        let p = Placement::from_pairs(&h, vec![(NodeId::new(1), a), (NodeId::new(2), a)]);
        let store: ReplicatedStore<u8> = ReplicatedStore::new(h, &p, 5);
        let rs = store.replica_set(hash_name("x"), a);
        assert_eq!(rs.len(), 2, "cannot place more replicas than members");
    }
}
