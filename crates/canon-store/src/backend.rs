//! Pluggable storage backends.
//!
//! A [`StorageBackend`] is the byte-level shard a node (simulated or live)
//! keeps its slice of the key space in. The trait is deliberately small —
//! `put`/`get`/`delete`/`scan`/`usage`/`flush` — so the replication layer
//! above ([`crate::ReplicatedStore`]) and the node runtime (canon-node)
//! stay agnostic to where bytes actually live. All backends are
//! content-addressed (see [`crate::content`]): `put` returns the
//! [`ContentId`] of the stored bytes, `get` re-verifies it on every read,
//! and identical values stored under different keys share one physical
//! blob.
//!
//! Three implementations ship with the workspace:
//!
//! * [`MemoryBackend`] — ordered in-memory maps; the default everywhere and
//!   the oracle the other backends are tested against.
//! * [`FileBackend`] — an append-only log plus an in-memory index, the
//!   classic bitcask shape. Recovery replays the log and truncates a torn
//!   tail, so a crash between `flush` calls loses at most the unsynced
//!   suffix, never previously synced records.
//! * `RemoteShard` (in canon-node) — round-trips through live node RPCs so
//!   a process can serve keys it does not hold locally.

use crate::content::ContentId;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Errors surfaced by a storage backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// A blob failed its content-id integrity check on read.
    Corrupt {
        /// The key whose read failed verification.
        key: u64,
        /// The content id recorded at write time.
        expected: ContentId,
        /// The content id of the bytes actually read back.
        actual: ContentId,
    },
    /// An I/O failure (file backends) described by its error text.
    Io(String),
    /// The backend cannot perform this operation (e.g. deletes over a
    /// remote protocol with no delete verb).
    Unsupported(&'static str),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Corrupt {
                key,
                expected,
                actual,
            } => write!(
                f,
                "integrity failure on key {key:#x}: stored as {expected}, read back as {actual}"
            ),
            BackendError::Io(e) => write!(f, "backend i/o error: {e}"),
            BackendError::Unsupported(what) => write!(f, "unsupported backend operation: {what}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<std::io::Error> for BackendError {
    fn from(e: std::io::Error) -> Self {
        BackendError::Io(e.to_string())
    }
}

/// A verified read result: the bytes plus the content id they hash to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stored {
    /// Content id of `bytes` (re-verified by the backend before returning).
    pub id: ContentId,
    /// The stored value bytes.
    pub bytes: Vec<u8>,
}

/// Space accounting for one backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Usage {
    /// Number of live keys.
    pub keys: usize,
    /// Number of distinct physical blobs (≤ `keys` thanks to dedup).
    pub blobs: usize,
    /// Bytes the keys reference logically (sum of value sizes per key).
    pub logical_bytes: u64,
    /// Bytes physically held after dedup (sum of distinct blob sizes).
    pub unique_bytes: u64,
}

impl Usage {
    /// Component-wise sum, for aggregating across shards.
    pub fn merged(self, other: Usage) -> Usage {
        Usage {
            keys: self.keys + other.keys,
            blobs: self.blobs + other.blobs,
            logical_bytes: self.logical_bytes + other.logical_bytes,
            unique_bytes: self.unique_bytes + other.unique_bytes,
        }
    }
}

/// A byte-level, content-addressed key/value shard.
///
/// `get` takes `&mut self` because real backends move state to read (a file
/// backend seeks, a remote backend drives a protocol round trip).
pub trait StorageBackend: fmt::Debug + Send {
    /// Stores `bytes` under `key`, returning their content id. Overwrites
    /// any previous value for the key.
    fn put(&mut self, key: u64, bytes: &[u8]) -> Result<ContentId, BackendError>;

    /// Reads the value stored under `key`, verifying its content id.
    /// Returns `Ok(None)` when the key is absent.
    fn get(&mut self, key: u64) -> Result<Option<Stored>, BackendError>;

    /// Removes `key`; returns whether it was present.
    fn delete(&mut self, key: u64) -> Result<bool, BackendError>;

    /// All live `(key, content id)` pairs in ascending key order.
    fn scan(&self) -> Vec<(u64, ContentId)>;

    /// Space accounting.
    fn usage(&self) -> Usage;

    /// Makes previously acknowledged writes durable (no-op for volatile
    /// backends).
    fn flush(&mut self) -> Result<(), BackendError>;
}

/// Convenience: whether the backend currently holds `key`.
pub fn contains(backend: &mut dyn StorageBackend, key: u64) -> Result<bool, BackendError> {
    Ok(backend.get(key)?.is_some())
}

/// Factory description of a backend, used where stores need to create one
/// shard per node (e.g. [`crate::ReplicatedStore::with_backend`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendKind {
    /// In-memory maps (the default).
    Memory,
    /// One append-only log file per shard under `dir`, named by the tag.
    File {
        /// Directory holding the per-shard log files (created on demand).
        dir: PathBuf,
    },
}

impl BackendKind {
    /// Creates a fresh backend for the shard identified by `tag`.
    pub fn create(&self, tag: &str) -> Result<Box<dyn StorageBackend>, BackendError> {
        match self {
            BackendKind::Memory => Ok(Box::new(MemoryBackend::new())),
            BackendKind::File { dir } => {
                std::fs::create_dir_all(dir)?;
                let path = dir.join(format!("{tag}.log"));
                Ok(Box::new(FileBackend::open(path)?))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------------

/// The in-memory backend: ordered maps, content-addressed blob table with
/// reference counts for dedup.
#[derive(Debug, Default, Clone)]
pub struct MemoryBackend {
    index: BTreeMap<u64, ContentId>,
    blobs: BTreeMap<ContentId, (Vec<u8>, usize)>,
}

impl MemoryBackend {
    /// An empty in-memory backend.
    pub fn new() -> MemoryBackend {
        MemoryBackend::default()
    }

    fn release(&mut self, id: ContentId) {
        if let Some((_, refs)) = self.blobs.get_mut(&id) {
            *refs -= 1;
            if *refs == 0 {
                self.blobs.remove(&id);
            }
        }
    }
}

impl StorageBackend for MemoryBackend {
    fn put(&mut self, key: u64, bytes: &[u8]) -> Result<ContentId, BackendError> {
        let id = ContentId::of(bytes);
        if let Some(old) = self.index.insert(key, id) {
            if old == id {
                return Ok(id);
            }
            self.release(old);
        }
        self.blobs
            .entry(id)
            .and_modify(|(_, refs)| *refs += 1)
            .or_insert_with(|| (bytes.to_vec(), 1));
        Ok(id)
    }

    fn get(&mut self, key: u64) -> Result<Option<Stored>, BackendError> {
        let Some(&id) = self.index.get(&key) else {
            return Ok(None);
        };
        // A dangling index entry is store corruption: report it as a
        // content mismatch against the empty blob rather than aborting.
        let Some((bytes, _)) = self.blobs.get(&id).cloned() else {
            return Err(BackendError::Corrupt {
                key,
                expected: id,
                actual: ContentId::of(&[]),
            });
        };
        let actual = ContentId::of(&bytes);
        if actual != id {
            return Err(BackendError::Corrupt {
                key,
                expected: id,
                actual,
            });
        }
        Ok(Some(Stored { id, bytes }))
    }

    fn delete(&mut self, key: u64) -> Result<bool, BackendError> {
        match self.index.remove(&key) {
            Some(id) => {
                self.release(id);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn scan(&self) -> Vec<(u64, ContentId)> {
        self.index.iter().map(|(&k, &id)| (k, id)).collect()
    }

    fn usage(&self) -> Usage {
        let logical: u64 = self
            .index
            .values()
            .map(|id| self.blobs[id].0.len() as u64)
            .sum();
        let unique: u64 = self.blobs.values().map(|(b, _)| b.len() as u64).sum();
        Usage {
            keys: self.index.len(),
            blobs: self.blobs.len(),
            logical_bytes: logical,
            unique_bytes: unique,
        }
    }

    fn flush(&mut self) -> Result<(), BackendError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// File backend: append-only log + in-memory index
// ---------------------------------------------------------------------------

const TAG_PUT: u8 = 1;
const TAG_REF: u8 = 2;
const TAG_DEL: u8 = 3;

#[derive(Debug, Clone, Copy)]
struct BlobRef {
    offset: u64,
    len: u32,
    refs: usize,
}

/// Append-only log backend (bitcask shape): every mutation appends a
/// length-prefixed record; an in-memory index maps keys to content ids and
/// content ids to log offsets. Dedup writes a small `REF` record instead of
/// re-appending the bytes. `open` replays the log, verifying every blob's
/// content id, and truncates a torn or corrupt tail so that a crash can
/// only lose the unsynced suffix.
#[derive(Debug)]
pub struct FileBackend {
    path: PathBuf,
    file: File,
    end: u64,
    index: BTreeMap<u64, ContentId>,
    blobs: BTreeMap<ContentId, BlobRef>,
}

impl FileBackend {
    /// Opens (or creates) the log at `path`, replaying existing records.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<FileBackend, BackendError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut backend = FileBackend {
            path,
            file,
            end: 0,
            index: BTreeMap::new(),
            blobs: BTreeMap::new(),
        };
        backend.replay()?;
        Ok(backend)
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Replays the log into the in-memory index, stopping at (and
    /// truncating) the first torn or corrupt record.
    fn replay(&mut self) -> Result<(), BackendError> {
        let mut raw = Vec::new();
        self.file.seek(SeekFrom::Start(0))?;
        self.file.read_to_end(&mut raw)?;
        let mut pos = 0usize;
        let mut good = 0u64;
        while raw.len() - pos >= 4 {
            let Ok(len_bytes) = raw[pos..pos + 4].try_into() else {
                break; // unreachable: the loop guard keeps 4 bytes in range
            };
            let len = u32::from_le_bytes(len_bytes) as usize;
            let body_at = pos + 4;
            if len < 1 || raw.len() - body_at < len {
                break; // torn tail
            }
            let body = &raw[body_at..body_at + len];
            if !self.apply_record(body, body_at as u64) {
                break; // corrupt record: stop replay here
            }
            pos = body_at + len;
            good = pos as u64;
        }
        if good < raw.len() as u64 {
            // Drop the torn tail so future appends start from a clean state.
            self.file.set_len(good)?;
        }
        self.end = good;
        self.file.seek(SeekFrom::Start(good))?;
        Ok(())
    }

    /// Applies one replayed record body; returns false if it is malformed
    /// or fails its integrity check.
    fn apply_record(&mut self, body: &[u8], body_offset: u64) -> bool {
        let read_u64 = |b: &[u8], at: usize| -> Option<u64> {
            Some(u64::from_le_bytes(b.get(at..at + 8)?.try_into().ok()?))
        };
        match body[0] {
            TAG_PUT => {
                let (Some(key), Some(cid)) = (read_u64(body, 1), read_u64(body, 9)) else {
                    return false;
                };
                let id = ContentId::from_raw(cid);
                let bytes = &body[17..];
                if !id.verifies(bytes) {
                    return false;
                }
                self.link(
                    key,
                    id,
                    BlobRef {
                        offset: body_offset + 17,
                        len: bytes.len() as u32,
                        refs: 0,
                    },
                );
                true
            }
            TAG_REF => {
                let (Some(key), Some(cid)) = (read_u64(body, 1), read_u64(body, 9)) else {
                    return false;
                };
                let id = ContentId::from_raw(cid);
                if !self.blobs.contains_key(&id) {
                    return false; // dangling REF: only possible via corruption
                }
                let blob = self.blobs[&id];
                self.link(key, id, blob);
                true
            }
            TAG_DEL => {
                let Some(key) = read_u64(body, 1) else {
                    return false;
                };
                if let Some(old) = self.index.remove(&key) {
                    self.release(old);
                }
                true
            }
            _ => false,
        }
    }

    /// Points `key` at blob `id`, adjusting reference counts. `blob` is the
    /// location to record if the id is new.
    fn link(&mut self, key: u64, id: ContentId, blob: BlobRef) {
        if let Some(old) = self.index.insert(key, id) {
            if old == id {
                return;
            }
            self.release(old);
        }
        self.blobs
            .entry(id)
            .and_modify(|b| b.refs += 1)
            .or_insert(BlobRef { refs: 1, ..blob });
    }

    fn release(&mut self, id: ContentId) {
        if let Some(blob) = self.blobs.get_mut(&id) {
            blob.refs -= 1;
            if blob.refs == 0 {
                // Bytes stay in the log (append-only) but leave the live
                // set; a later put of the same content re-appends them.
                self.blobs.remove(&id);
            }
        }
    }

    fn append(&mut self, body: &[u8]) -> Result<u64, BackendError> {
        let len = body.len() as u32;
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(&len.to_le_bytes())?;
        self.file.write_all(body)?;
        let body_offset = self.end + 4;
        self.end += 4 + body.len() as u64;
        Ok(body_offset)
    }
}

impl StorageBackend for FileBackend {
    fn put(&mut self, key: u64, bytes: &[u8]) -> Result<ContentId, BackendError> {
        let id = ContentId::of(bytes);
        if self.index.get(&key) == Some(&id) {
            return Ok(id); // idempotent re-put: no record needed
        }
        if self.blobs.contains_key(&id) {
            // Dedup: the bytes are already in the log; record only the link.
            let mut body = Vec::with_capacity(17);
            body.push(TAG_REF);
            body.extend_from_slice(&key.to_le_bytes());
            body.extend_from_slice(&id.raw().to_le_bytes());
            self.append(&body)?;
            let blob = self.blobs[&id];
            self.link(key, id, blob);
        } else {
            let mut body = Vec::with_capacity(17 + bytes.len());
            body.push(TAG_PUT);
            body.extend_from_slice(&key.to_le_bytes());
            body.extend_from_slice(&id.raw().to_le_bytes());
            body.extend_from_slice(bytes);
            let body_offset = self.append(&body)?;
            self.link(
                key,
                id,
                BlobRef {
                    offset: body_offset + 17,
                    len: bytes.len() as u32,
                    refs: 0,
                },
            );
        }
        Ok(id)
    }

    fn get(&mut self, key: u64) -> Result<Option<Stored>, BackendError> {
        let Some(&id) = self.index.get(&key) else {
            return Ok(None);
        };
        let blob = self.blobs[&id];
        let mut bytes = vec![0u8; blob.len as usize];
        self.file.seek(SeekFrom::Start(blob.offset))?;
        self.file.read_exact(&mut bytes)?;
        let actual = ContentId::of(&bytes);
        if actual != id {
            return Err(BackendError::Corrupt {
                key,
                expected: id,
                actual,
            });
        }
        Ok(Some(Stored { id, bytes }))
    }

    fn delete(&mut self, key: u64) -> Result<bool, BackendError> {
        let Some(&old) = self.index.get(&key) else {
            return Ok(false);
        };
        let mut body = Vec::with_capacity(9);
        body.push(TAG_DEL);
        body.extend_from_slice(&key.to_le_bytes());
        self.append(&body)?;
        self.index.remove(&key);
        self.release(old);
        Ok(true)
    }

    fn scan(&self) -> Vec<(u64, ContentId)> {
        self.index.iter().map(|(&k, &id)| (k, id)).collect()
    }

    fn usage(&self) -> Usage {
        let logical: u64 = self
            .index
            .values()
            .map(|id| u64::from(self.blobs[id].len))
            .sum();
        let unique: u64 = self.blobs.values().map(|b| u64::from(b.len)).sum();
        Usage {
            keys: self.index.len(),
            blobs: self.blobs.len(),
            logical_bytes: logical,
            unique_bytes: unique,
        }
    }

    fn flush(&mut self) -> Result<(), BackendError> {
        self.file.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique temp path without consulting the wall clock (banned by the
    /// workspace audit): process id + a process-local counter.
    fn temp_log(label: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "canon-store-test-{}-{label}-{n}.log",
            std::process::id()
        ))
    }

    fn exercise(backend: &mut dyn StorageBackend) {
        assert_eq!(backend.get(1).expect("get"), None);
        let id = backend.put(1, b"alpha").expect("put");
        assert!(id.verifies(b"alpha"));
        let read = backend.get(1).expect("get").expect("present");
        assert_eq!(read.bytes, b"alpha");
        assert_eq!(read.id, id);
        // Same content under a second key dedups.
        backend.put(2, b"alpha").expect("put");
        let u = backend.usage();
        assert_eq!(u.keys, 2);
        assert_eq!(u.blobs, 1);
        assert_eq!(u.logical_bytes, 10);
        assert_eq!(u.unique_bytes, 5);
        // Overwrite releases the old blob once both refs are gone.
        backend.put(1, b"beta").expect("put");
        backend.put(2, b"beta").expect("put");
        let u = backend.usage();
        assert_eq!((u.keys, u.blobs), (2, 1));
        assert!(backend.delete(1).expect("delete"));
        assert!(!backend.delete(1).expect("delete"));
        assert_eq!(backend.get(1).expect("get"), None);
        assert_eq!(backend.scan().len(), 1);
        backend.flush().expect("flush");
    }

    #[test]
    fn memory_backend_contract() {
        exercise(&mut MemoryBackend::new());
    }

    #[test]
    fn file_backend_contract() {
        let path = temp_log("contract");
        exercise(&mut FileBackend::open(&path).expect("open"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backend_survives_reopen() {
        let path = temp_log("reopen");
        {
            let mut b = FileBackend::open(&path).expect("open");
            b.put(10, b"ten").expect("put");
            b.put(11, b"eleven").expect("put");
            b.put(12, b"ten").expect("put"); // dedup REF record
            b.delete(11).expect("delete");
            b.put(10, b"TEN").expect("put"); // overwrite
            b.flush().expect("flush");
        }
        let mut b = FileBackend::open(&path).expect("reopen");
        assert_eq!(b.get(10).expect("get").expect("live").bytes, b"TEN");
        assert_eq!(b.get(11).expect("get"), None);
        assert_eq!(b.get(12).expect("get").expect("live").bytes, b"ten");
        assert_eq!(b.scan().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backend_truncates_torn_tail() {
        let path = temp_log("torn");
        {
            let mut b = FileBackend::open(&path).expect("open");
            b.put(1, b"safe").expect("put");
            b.put(2, b"gone").expect("put");
            b.flush().expect("flush");
        }
        // Simulate a crash mid-append: chop bytes off the final record.
        let len = std::fs::metadata(&path).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&path).expect("open");
        f.set_len(len - 3).expect("truncate");
        drop(f);
        let mut b = FileBackend::open(&path).expect("recover");
        assert_eq!(b.get(1).expect("get").expect("live").bytes, b"safe");
        assert_eq!(b.get(2).expect("get"), None, "torn record discarded");
        // The log is writable again after recovery.
        b.put(3, b"new").expect("put");
        assert_eq!(b.get(3).expect("get").expect("live").bytes, b"new");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_backend_detects_flipped_bits() {
        let path = temp_log("flip");
        {
            let mut b = FileBackend::open(&path).expect("open");
            b.put(7, b"immutable truth").expect("put");
            b.flush().expect("flush");
        }
        // Flip a byte inside the blob body (offset 4 + 17 lands in data).
        let mut raw = std::fs::read(&path).expect("read");
        let at = raw.len() - 2;
        raw[at] ^= 0xff;
        std::fs::write(&path, &raw).expect("write");
        // Replay refuses the corrupt record, so the key is simply absent.
        let mut b = FileBackend::open(&path).expect("open");
        assert_eq!(b.get(7).expect("get"), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn backend_kind_factory() {
        let dir = std::env::temp_dir().join(format!("canon-store-kind-{}", std::process::id()));
        let kind = BackendKind::File { dir: dir.clone() };
        {
            let mut b = kind.create("shard-a").expect("create");
            b.put(5, b"five").expect("put");
            b.flush().expect("flush");
        }
        let mut again = kind.create("shard-a").expect("reopen");
        assert_eq!(again.get(5).expect("get").expect("live").bytes, b"five");
        let mut mem = BackendKind::Memory.create("x").expect("create");
        assert_eq!(mem.get(5).expect("get"), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
