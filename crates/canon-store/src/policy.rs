//! Declarative replica placement: the [`ReplicationPolicy`] engine.
//!
//! PR 4 hard-wired successor replication with a bare `replication: usize`
//! threaded through the store, the node runtime and the benchmarks. This
//! module replaces that plumbing with a policy layer: a placement rule is a
//! value ([`Policy`]) interpreted against a [`PlacementCtx`] (the hierarchy,
//! the domain membership, and the ring replicas are drawn from). The three
//! shipped policies:
//!
//! * [`Policy::Fixed`] — exactly the old rule: the responsible node and its
//!   `k − 1` distinct ring successors. Placement-identical to the PR-4
//!   `replica_successors` helper, which now lives here as the private core
//!   (a property test in `tests/storage_policies.rs` pins the equivalence
//!   byte-for-byte).
//! * [`Policy::PercentOfDomain`] — the replica count scales with the
//!   population of the writer domain's level-`level` ancestor, so hot large
//!   regions hold proportionally more copies.
//! * [`Policy::HierarchyGeo`] — fixed count, plus a geographic constraint
//!   only Canon's hierarchy can express cheaply: at least one replica must
//!   live **outside** the writer's level-`min_outside_level` domain, so a
//!   whole-building (or whole-region) failure cannot take every copy.
//!
//! All policies place replicas by walking ring successors from the
//! responsible node, so the Zave-style durability argument carries over:
//! an acknowledged write survives while at least one placed replica's
//! domain survives.

use canon_hierarchy::{DomainId, DomainMembership, Hierarchy};
use canon_id::ring::SortedRing;
use canon_id::{Key, NodeId};
use std::collections::BTreeSet;

/// The successor-replication placement rule on a bare ring: the node
/// responsible for `point` plus its distinct ring successors, capped at
/// `replication` nodes (and at the ring size).
///
/// This was the public PR-4 helper; it is now the internal core of
/// [`Policy::Fixed`] (and of the ring walks the other policies start from).
pub(crate) fn replica_successors(
    ring: &SortedRing,
    point: NodeId,
    replication: usize,
) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(replication);
    let Some(first) = ring.responsible(point) else {
        return out;
    };
    let mut cur = first;
    for _ in 0..replication.min(ring.len()) {
        out.push(cur);
        // `responsible` returned a member, so the ring cannot be empty.
        let Some(next) = ring.strict_successor(cur) else {
            break;
        };
        cur = next;
        if cur == first {
            break;
        }
    }
    out
}

/// Everything a policy may consult when placing replicas for one key.
#[derive(Clone, Copy)]
pub struct PlacementCtx<'a> {
    /// The hierarchy the store spans.
    pub hierarchy: &'a Hierarchy,
    /// Per-domain membership rings.
    pub membership: &'a DomainMembership,
    /// The storage domain replicas must stay inside (Canon containment).
    pub domain: DomainId,
    /// The ring replicas are drawn from. Usually
    /// `membership.ring(domain)`, but repair passes a live-filtered ring.
    pub ring: &'a SortedRing,
    /// The leaf domain of the writing node, when known. `HierarchyGeo`
    /// anchors its "outside" constraint here; without it the geo clause is
    /// vacuous and the policy degrades to `Fixed`.
    pub writer_leaf: Option<DomainId>,
}

impl<'a> PlacementCtx<'a> {
    /// A context for `domain` using its full membership ring and no writer.
    pub fn for_domain(
        hierarchy: &'a Hierarchy,
        membership: &'a DomainMembership,
        domain: DomainId,
    ) -> PlacementCtx<'a> {
        PlacementCtx {
            hierarchy,
            membership,
            domain,
            ring: membership.ring(domain),
            writer_leaf: None,
        }
    }

    /// The same context annotated with the writer's leaf domain.
    pub fn with_writer(self, writer_leaf: DomainId) -> PlacementCtx<'a> {
        PlacementCtx {
            writer_leaf: Some(writer_leaf),
            ..self
        }
    }

    /// The writer's ancestor domain at `level` (clamped to the writer's
    /// depth), or `None` when no writer is known.
    fn writer_home(&self, level: u32) -> Option<DomainId> {
        let leaf = self.writer_leaf?;
        let depth = self.hierarchy.depth(leaf);
        Some(self.hierarchy.ancestor_at_depth(leaf, level.min(depth)))
    }
}

/// A replica placement rule, interpreted against a [`PlacementCtx`].
pub trait ReplicationPolicy {
    /// The nodes that should hold `key` (responsible node first).
    fn replicas(&self, ctx: &PlacementCtx<'_>, key: Key) -> Vec<NodeId>;

    /// How many replicas the policy wants in this context, capped at the
    /// ring size.
    fn target_count(&self, ctx: &PlacementCtx<'_>) -> usize;

    /// Whether a set of live holders satisfies the policy for `key`:
    /// enough distinct holders, all inside the storage domain, plus any
    /// policy-specific constraint (e.g. the geo clause).
    fn satisfied(&self, ctx: &PlacementCtx<'_>, key: Key, holders: &[NodeId]) -> bool;

    /// A short stable name for reports and benchmark labels.
    fn name(&self) -> String;
}

/// The shipped placement policies. `Copy` so configurations that embed a
/// policy (e.g. canon-node's `RuntimeConfig`) stay `Copy`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Policy {
    /// Exactly `k` replicas: the responsible node and its `k − 1` ring
    /// successors — the classic CFS rule, byte-identical to PR 4's
    /// `replica_successors`.
    Fixed(usize),
    /// Replica count proportional to the population of the writer domain's
    /// ancestor at `level`: `ceil(percent × |ancestor|)`, at least 1.
    PercentOfDomain {
        /// Hierarchy depth of the ancestor whose population sets the scale
        /// (0 = root, so the whole network).
        level: u32,
        /// Fraction of that population to replicate onto, in `(0, 1]`.
        percent: f64,
    },
    /// `replication` copies with a geographic spread constraint: at least
    /// one replica outside the writer's ancestor domain at
    /// `min_outside_level`, whenever the ring has such a node. The walk
    /// extends past the base window to the first outside node and swaps it
    /// for the farthest base replica, so the count never changes.
    HierarchyGeo {
        /// Total number of replicas to place.
        replication: usize,
        /// Depth of the writer's domain that at least one replica must
        /// escape (1 = the writer's top-level region).
        min_outside_level: u32,
    },
}

impl Policy {
    /// Replica placement on a bare ring, with no hierarchy in sight — the
    /// projection canon-node uses on its `{self} ∪ successor-list` mini
    /// ring. `Fixed(k)` keeps its exact semantics; the other policies
    /// degrade to their count (percent of the *ring*, geo without the geo
    /// clause) since the ring carries no domain structure.
    pub fn replicas_on_ring(&self, ring: &SortedRing, point: NodeId) -> Vec<NodeId> {
        let count = match self {
            Policy::Fixed(k) => *k,
            Policy::PercentOfDomain { percent, .. } => scaled_count(*percent, ring.len()),
            Policy::HierarchyGeo { replication, .. } => *replication,
        };
        replica_successors(ring, point, count)
    }
}

/// `ceil(percent × population)`, at least 1.
fn scaled_count(percent: f64, population: usize) -> usize {
    ((percent * population as f64).ceil() as usize).max(1)
}

impl ReplicationPolicy for Policy {
    fn target_count(&self, ctx: &PlacementCtx<'_>) -> usize {
        let want = match self {
            Policy::Fixed(k) => *k,
            Policy::PercentOfDomain { level, percent } => {
                let depth = ctx.hierarchy.depth(ctx.domain);
                let anchor = ctx
                    .hierarchy
                    .ancestor_at_depth(ctx.domain, (*level).min(depth));
                scaled_count(*percent, ctx.membership.size(anchor))
            }
            Policy::HierarchyGeo { replication, .. } => *replication,
        };
        want.min(ctx.ring.len())
    }

    fn replicas(&self, ctx: &PlacementCtx<'_>, key: Key) -> Vec<NodeId> {
        let base = replica_successors(ctx.ring, key.as_point(), self.target_count(ctx));
        match self {
            Policy::HierarchyGeo {
                min_outside_level, ..
            } => geo_adjust(ctx, base, *min_outside_level),
            _ => base,
        }
    }

    fn satisfied(&self, ctx: &PlacementCtx<'_>, key: Key, holders: &[NodeId]) -> bool {
        let _ = key;
        let distinct: BTreeSet<NodeId> = holders.iter().copied().collect();
        if distinct.len() < self.target_count(ctx) {
            return false;
        }
        let domain_ring = ctx.membership.ring(ctx.domain);
        if !distinct.iter().all(|&n| domain_ring.contains(n)) {
            return false; // containment: replicas never leave the domain
        }
        if let Policy::HierarchyGeo {
            min_outside_level, ..
        } = self
        {
            if let Some(home) = ctx.writer_home(*min_outside_level) {
                let inside = |n: NodeId| ctx.membership.ring(home).contains(n);
                let escapable = ctx.ring.as_slice().iter().any(|&n| !inside(n));
                if escapable && distinct.iter().all(|&n| inside(n)) {
                    return false; // an outside node exists but holds nothing
                }
            }
        }
        true
    }

    fn name(&self) -> String {
        match self {
            Policy::Fixed(k) => format!("fixed({k})"),
            Policy::PercentOfDomain { level, percent } => {
                format!("percent(level={level},{percent})")
            }
            Policy::HierarchyGeo {
                replication,
                min_outside_level,
            } => format!("geo({replication},outside={min_outside_level})"),
        }
    }
}

/// Enforces the geo clause on a base successor run: if every base replica
/// sits inside the writer's home domain, keep walking the ring to the first
/// outside node and swap it for the farthest base replica. When the whole
/// ring is inside the home domain the constraint is unsatisfiable and the
/// base placement stands.
fn geo_adjust(ctx: &PlacementCtx<'_>, mut base: Vec<NodeId>, level: u32) -> Vec<NodeId> {
    let Some(home) = ctx.writer_home(level) else {
        return base;
    };
    let inside = |n: NodeId| ctx.membership.ring(home).contains(n);
    if base.is_empty() || base.iter().any(|&n| !inside(n)) {
        return base;
    }
    let first = base[0];
    let Some(&last) = base.last() else {
        return base; // unreachable: emptiness was checked above
    };
    let mut cur = last;
    for _ in 0..ctx.ring.len() {
        // The base replicas are ring members, so the walk cannot run dry.
        let Some(next) = ctx.ring.strict_successor(cur) else {
            return base;
        };
        cur = next;
        if cur == first {
            break; // walked the whole ring: everyone is inside
        }
        if !inside(cur) {
            base.pop();
            base.push(cur);
            break;
        }
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_hierarchy::Placement;
    use canon_id::hash::hash_name;
    use canon_id::rng::Seed;

    fn setup() -> (Hierarchy, Placement, DomainMembership) {
        let h = Hierarchy::balanced(3, 2);
        let p = Placement::uniform(&h, 120, Seed(9));
        let m = DomainMembership::build(&h, &p);
        (h, p, m)
    }

    #[test]
    fn fixed_matches_the_successor_rule() {
        let (h, _, m) = setup();
        let ctx = PlacementCtx::for_domain(&h, &m, h.root());
        let key = hash_name("item");
        let via_policy = Policy::Fixed(4).replicas(&ctx, key);
        let direct = replica_successors(ctx.ring, key.as_point(), 4);
        assert_eq!(via_policy, direct);
        assert_eq!(via_policy.len(), 4);
        assert!(Policy::Fixed(4).satisfied(&ctx, key, &via_policy));
    }

    #[test]
    fn percent_scales_with_the_anchor_population() {
        let (h, _, m) = setup();
        let leaf = h.domains_at_depth(1)[0];
        let ctx = PlacementCtx::for_domain(&h, &m, leaf);
        // Anchored at the root the count follows the whole network…
        let global = Policy::PercentOfDomain {
            level: 0,
            percent: 0.05,
        };
        assert_eq!(global.target_count(&ctx), scaled_count(0.05, 120));
        // …anchored at the leaf's own level it follows the leaf population.
        let local = Policy::PercentOfDomain {
            level: 1,
            percent: 0.05,
        };
        assert_eq!(local.target_count(&ctx), scaled_count(0.05, m.size(leaf)));
        let rs = local.replicas(&ctx, hash_name("scaled"));
        assert_eq!(rs.len(), local.target_count(&ctx));
    }

    #[test]
    fn geo_places_a_replica_outside_the_writer_region() {
        let (h, p, m) = setup();
        let writer_leaf = p.leaf_of(p.ids()[0]).expect("placed");
        let home = h.ancestor_at_depth(writer_leaf, 1);
        let policy = Policy::HierarchyGeo {
            replication: 3,
            min_outside_level: 1,
        };
        let ctx = PlacementCtx::for_domain(&h, &m, h.root()).with_writer(writer_leaf);
        for i in 0..40 {
            let key = hash_name(&format!("geo-{i}"));
            let rs = policy.replicas(&ctx, key);
            assert_eq!(rs.len(), 3);
            assert!(
                rs.iter().any(|&n| !m.ring(home).contains(n)),
                "key {key}: all of {rs:?} inside {home}"
            );
            assert!(policy.satisfied(&ctx, key, &rs));
            // Dropping the escape replica must fail the check whenever the
            // remainder is all-inside.
            let inside_only: Vec<NodeId> = rs
                .iter()
                .copied()
                .filter(|&n| m.ring(home).contains(n))
                .collect();
            if inside_only.len() == 3 {
                continue;
            }
            assert!(!policy.satisfied(&ctx, key, &inside_only));
        }
    }

    #[test]
    fn geo_without_writer_is_plain_fixed() {
        let (h, _, m) = setup();
        let ctx = PlacementCtx::for_domain(&h, &m, h.root());
        let key = hash_name("anon");
        let geo = Policy::HierarchyGeo {
            replication: 3,
            min_outside_level: 1,
        };
        assert_eq!(
            geo.replicas(&ctx, key),
            Policy::Fixed(3).replicas(&ctx, key)
        );
    }

    #[test]
    fn geo_is_vacuous_when_the_domain_cannot_escape() {
        // Storage domain = the writer's own region: every member is inside,
        // so the constraint is unsatisfiable and placement equals Fixed.
        let (h, p, m) = setup();
        let writer_leaf = p.leaf_of(p.ids()[0]).expect("placed");
        let home = h.ancestor_at_depth(writer_leaf, 1);
        let geo = Policy::HierarchyGeo {
            replication: 3,
            min_outside_level: 1,
        };
        let ctx = PlacementCtx::for_domain(&h, &m, home).with_writer(writer_leaf);
        let key = hash_name("trapped");
        let rs = geo.replicas(&ctx, key);
        assert_eq!(rs, Policy::Fixed(3).replicas(&ctx, key));
        assert!(geo.satisfied(&ctx, key, &rs), "vacuous constraint passes");
    }

    #[test]
    fn satisfied_rejects_short_or_escaped_sets() {
        let (h, _, m) = setup();
        let ctx = PlacementCtx::for_domain(&h, &m, h.domains_at_depth(1)[0]);
        let key = hash_name("checked");
        let policy = Policy::Fixed(3);
        let rs = policy.replicas(&ctx, key);
        assert!(policy.satisfied(&ctx, key, &rs));
        assert!(!policy.satisfied(&ctx, key, &rs[..2]), "too few");
        let mut escaped = rs;
        // A node from a sibling domain sits outside the storage domain, so
        // the containment clause must reject the set.
        let other = h.domains_at_depth(1)[1];
        escaped[2] = m.ring(other).as_slice()[0];
        assert!(!policy.satisfied(&ctx, key, &escaped));
    }

    #[test]
    fn ring_projection_matches_fixed_on_small_rings() {
        let ring = SortedRing::new(vec![NodeId::new(10), NodeId::new(20), NodeId::new(30)]);
        let got = Policy::Fixed(5).replicas_on_ring(&ring, NodeId::new(21));
        assert_eq!(got, replica_successors(&ring, NodeId::new(21), 5));
        assert_eq!(got.len(), 3, "capped at ring size");
        let geo = Policy::HierarchyGeo {
            replication: 2,
            min_outside_level: 1,
        };
        assert_eq!(geo.replicas_on_ring(&ring, NodeId::new(21)).len(), 2);
    }
}
