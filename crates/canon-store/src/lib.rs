//! Hierarchical content storage, access control and caching (paper §4).
//!
//! A hierarchical DHT gives content placement two extra degrees of freedom
//! beyond a flat DHT:
//!
//! * a **storage domain** `Ds` (containing the publisher): the key–value
//!   pair is stored at the node of `Ds` whose identifier is closest to, but
//!   not greater than, the key — the responsible node *within `Ds`'s own
//!   DHT*;
//! * an **access domain** `Da ⊇ Ds`: if wider than `Ds`, a *pointer* to the
//!   content is additionally stored at the responsible node within `Da`.
//!
//! Queries route hierarchically (lowest ring first); the node that switches
//! routing from one level to the next — the *proxy node* of the query in
//! that domain, which by path convergence is the domain's responsible node
//! for the key — answers iff it holds matching content whose access domain
//! is no smaller than the current routing level. A query for locally stored
//! content therefore never leaves the domain, and access control falls out
//! of routing for free: a node can only ever reach content whose access
//! domain contains it.
//!
//! §4.2's caching is implemented by [`HierarchicalStore::query_and_cache`]:
//! answers are cached at the proxy node of every level crossed, annotated
//! with the level served, and [`CachePolicy`] preferentially evicts entries
//! with larger level numbers (deeper levels — cheap to refetch from the
//! next level up).
//!
//! # Example
//!
//! ```
//! use canon_hierarchy::{Hierarchy, Placement};
//! use canon_id::{hash::hash_name, rng::Seed};
//! use canon_store::HierarchicalStore;
//!
//! let mut h = Hierarchy::new();
//! let team = h.add_domain(h.root(), "team");
//! let p = Placement::uniform(&h, 20, Seed(1));
//! let mut store: HierarchicalStore<&str> = HierarchicalStore::new(h.clone(), &p);
//! let publisher = p.ids()[0];
//! let leaf = p.leaf_of(publisher).expect("placed");
//! store.insert(publisher, hash_name("doc"), "hello", leaf, h.root())?;
//! assert!(store.query(p.ids()[1], hash_name("doc"))?.is_found());
//! # Ok::<(), canon_store::StoreError>(())
//! ```

#![forbid(unsafe_code)]

pub mod backend;
pub mod content;
pub mod policy;
pub mod replication;
pub mod routed;

pub use backend::{
    BackendError, BackendKind, FileBackend, MemoryBackend, StorageBackend, Stored, Usage,
};
pub use content::{BlobValue, ContentId};
pub use policy::{PlacementCtx, Policy, ReplicationPolicy};
pub use replication::ReplicatedStore;

use canon_hierarchy::{DomainId, DomainMembership, Hierarchy, Placement};
use canon_id::{Key, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Errors returned by store operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The publisher does not belong to the requested storage domain.
    PublisherOutsideStorageDomain,
    /// The access domain does not contain the storage domain.
    AccessDoesNotContainStorage,
    /// The publisher identifier is not a member of the network.
    UnknownPublisher,
    /// The querier identifier is not a member of the network.
    UnknownQuerier,
    /// Overlay routing failed while executing the query
    /// (see [`canon_overlay::RouteError`]).
    Routing(canon_overlay::RouteError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::PublisherOutsideStorageDomain => {
                write!(f, "publisher is outside the requested storage domain")
            }
            StoreError::AccessDoesNotContainStorage => {
                write!(f, "access domain does not contain the storage domain")
            }
            StoreError::UnknownPublisher => write!(f, "publisher is not a member of the network"),
            StoreError::UnknownQuerier => write!(f, "querier is not a member of the network"),
            StoreError::Routing(e) => write!(f, "overlay routing failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<canon_overlay::RouteError> for StoreError {
    fn from(e: canon_overlay::RouteError) -> StoreError {
        StoreError::Routing(e)
    }
}

/// Where an insert placed things.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InsertReceipt {
    /// The node storing the value (responsible node within the storage
    /// domain).
    pub storage_node: NodeId,
    /// The node storing the pointer (responsible node within the access
    /// domain), when the access domain is wider than the storage domain.
    pub pointer_node: Option<NodeId>,
}

/// How a query was answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Via {
    /// Content found directly at the answering proxy.
    Direct,
    /// A pointer was found and resolved to the storage node.
    Pointer {
        /// The node the pointer was resolved from.
        storage_node: NodeId,
    },
    /// A cached copy answered.
    Cache,
}

/// Result of a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryOutcome<V> {
    /// The key was found.
    Found {
        /// Matching values visible at the answering level.
        values: Vec<V>,
        /// Depth of the domain whose proxy answered (root = 0).
        answered_at_depth: u32,
        /// The proxy node that answered.
        answering_node: NodeId,
        /// Proxy nodes visited, lowest level first (including the answerer).
        proxy_path: Vec<NodeId>,
        /// How the answer was obtained.
        via: Via,
    },
    /// The key was not visible anywhere on the querier's proxy path.
    NotFound {
        /// Proxy nodes visited, lowest level first.
        proxy_path: Vec<NodeId>,
    },
}

impl<V> QueryOutcome<V> {
    /// Whether the query found the key.
    pub fn is_found(&self) -> bool {
        matches!(self, QueryOutcome::Found { .. })
    }
}

#[derive(Clone, Debug)]
struct StoredItem<V> {
    key: Key,
    value: V,
    storage_domain: DomainId,
    access_domain: DomainId,
}

#[derive(Clone, Debug)]
struct Pointer {
    key: Key,
    access_domain: DomainId,
    storage_node: NodeId,
}

/// Level-aware cache replacement (paper §4.2): evict entries annotated with
/// the *largest* level number first (deepest domain — a copy likely exists
/// one level up), breaking ties by least-recent use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CachePolicy {
    /// Entries kept per node.
    pub capacity: usize,
    /// Coordinated replacement (§4.2's extension): when evicting, prefer
    /// victims that also have a live copy at the next level up — keeping
    /// entries that are this subtree's only nearby copy.
    pub coordinated: bool,
}

impl Default for CachePolicy {
    fn default() -> Self {
        CachePolicy {
            capacity: 64,
            coordinated: false,
        }
    }
}

#[derive(Clone, Debug)]
struct CacheEntry<V> {
    key: Key,
    value: V,
    level: u32,
    last_used: u64,
}

#[derive(Clone, Debug, Default)]
struct NodeCache<V> {
    entries: Vec<CacheEntry<V>>,
}

impl<V: Clone> NodeCache<V> {
    fn lookup(&mut self, key: Key, clock: u64) -> Option<(V, u32)> {
        let e = self.entries.iter_mut().find(|e| e.key == key)?;
        e.last_used = clock;
        Some((e.value.clone(), e.level))
    }

    /// Inserts an entry. `covered_above` flags, per current entry index,
    /// whether a copy of that entry's key exists at the next-level proxy
    /// (only consulted under coordinated replacement).
    fn insert(
        &mut self,
        key: Key,
        value: V,
        level: u32,
        clock: u64,
        policy: CachePolicy,
        covered_above: &[bool],
    ) {
        if policy.capacity == 0 {
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            // Keep the smallest (highest-utility) level annotation.
            e.level = e.level.min(level);
            e.last_used = clock;
            return;
        }
        if self.entries.len() >= policy.capacity {
            // Evict: (coordinated: duplicated-above first,) largest level
            // first, then least recently used. A zero-capacity cache has
            // nothing to evict and simply churns its single push below.
            if let Some(victim) = self
                .entries
                .iter()
                .enumerate()
                .max_by_key(|(i, e)| {
                    let dup = policy.coordinated && covered_above.get(*i).copied().unwrap_or(false);
                    (dup, e.level, u64::MAX - e.last_used)
                })
                .map(|(i, _)| i)
            {
                self.entries.swap_remove(victim);
            }
        }
        self.entries.push(CacheEntry {
            key,
            value,
            level,
            last_used: clock,
        });
    }
}

/// The hierarchical store simulated over a node population.
///
/// The store models §4's protocol at the proxy-node level: by the
/// convergence property, the query path of key `k` from any node of domain
/// `D` exits `D` through `D`'s responsible node for `k`, so content,
/// pointer and cache checks happen exactly at the per-level responsible
/// nodes, which the store computes from the domain membership rings.
#[derive(Clone, Debug)]
pub struct HierarchicalStore<V> {
    hierarchy: Hierarchy,
    membership: DomainMembership,
    leaf_of: HashMap<NodeId, DomainId>,
    content: HashMap<NodeId, Vec<StoredItem<V>>>,
    pointers: HashMap<NodeId, Vec<Pointer>>,
    caches: HashMap<NodeId, NodeCache<V>>,
    policy: CachePolicy,
    clock: u64,
}

impl<V: Clone + PartialEq> HierarchicalStore<V> {
    /// Creates a store over `hierarchy`/`placement` with the default cache
    /// policy.
    pub fn new(hierarchy: Hierarchy, placement: &Placement) -> Self {
        Self::with_policy(hierarchy, placement, CachePolicy::default())
    }

    /// Creates a store with an explicit cache policy.
    pub fn with_policy(hierarchy: Hierarchy, placement: &Placement, policy: CachePolicy) -> Self {
        let membership = DomainMembership::build(&hierarchy, placement);
        let leaf_of = placement.iter().collect();
        HierarchicalStore {
            hierarchy,
            membership,
            leaf_of,
            content: HashMap::new(),
            pointers: HashMap::new(),
            caches: HashMap::new(),
            policy,
            clock: 0,
        }
    }

    /// The node responsible for `key` within `domain` (closest identifier
    /// at or below the key, wrapping).
    ///
    /// # Panics
    ///
    /// Panics if the domain has no members.
    pub fn responsible_in(&self, key: Key, domain: DomainId) -> NodeId {
        self.membership
            .ring(domain)
            .responsible(key.as_point())
            // audit: allow(panic-site) — the documented `# Panics` contract.
            .expect("domain has members")
    }

    /// Inserts `value` under `key`, published by `publisher`, stored within
    /// `storage_domain` and visible within `access_domain`.
    ///
    /// # Errors
    ///
    /// * [`StoreError::UnknownPublisher`] if `publisher` is not placed;
    /// * [`StoreError::PublisherOutsideStorageDomain`] if the publisher is
    ///   not inside `storage_domain`;
    /// * [`StoreError::AccessDoesNotContainStorage`] if `access_domain` is
    ///   not an ancestor-or-self of `storage_domain`.
    pub fn insert(
        &mut self,
        publisher: NodeId,
        key: Key,
        value: V,
        storage_domain: DomainId,
        access_domain: DomainId,
    ) -> Result<InsertReceipt, StoreError> {
        let leaf = *self
            .leaf_of
            .get(&publisher)
            .ok_or(StoreError::UnknownPublisher)?;
        if !self.hierarchy.is_ancestor_or_self(storage_domain, leaf) {
            return Err(StoreError::PublisherOutsideStorageDomain);
        }
        if !self
            .hierarchy
            .is_ancestor_or_self(access_domain, storage_domain)
        {
            return Err(StoreError::AccessDoesNotContainStorage);
        }
        let storage_node = self.responsible_in(key, storage_domain);
        self.content
            .entry(storage_node)
            .or_default()
            .push(StoredItem {
                key,
                value,
                storage_domain,
                access_domain,
            });
        let pointer_node = if access_domain != storage_domain {
            let pn = self.responsible_in(key, access_domain);
            self.pointers.entry(pn).or_default().push(Pointer {
                key,
                access_domain,
                storage_node,
            });
            Some(pn)
        } else {
            None
        };
        Ok(InsertReceipt {
            storage_node,
            pointer_node,
        })
    }

    /// The proxy-node path a query for `key` from `querier` visits: the
    /// responsible node of each ancestor domain, leaf-most first.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownQuerier`] if `querier` is not placed.
    pub fn proxy_path(
        &self,
        querier: NodeId,
        key: Key,
    ) -> Result<Vec<(DomainId, NodeId)>, StoreError> {
        let leaf = *self
            .leaf_of
            .get(&querier)
            .ok_or(StoreError::UnknownQuerier)?;
        Ok(self
            .hierarchy
            .ancestors(leaf)
            .map(|d| (d, self.responsible_in(key, d)))
            .collect())
    }

    /// Queries `key` from `querier` without touching caches.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownQuerier`] if `querier` is not placed.
    pub fn query(&mut self, querier: NodeId, key: Key) -> Result<QueryOutcome<V>, StoreError> {
        self.query_impl(querier, key, false)
    }

    /// Queries `key` from `querier`, consulting per-node caches and caching
    /// the answer at every proxy crossed (annotated with the level it
    /// serves, per §4.2).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownQuerier`] if `querier` is not placed.
    pub fn query_and_cache(
        &mut self,
        querier: NodeId,
        key: Key,
    ) -> Result<QueryOutcome<V>, StoreError> {
        self.query_impl(querier, key, true)
    }

    fn query_impl(
        &mut self,
        querier: NodeId,
        key: Key,
        use_cache: bool,
    ) -> Result<QueryOutcome<V>, StoreError> {
        self.clock += 1;
        let clock = self.clock;
        let path = self.proxy_path(querier, key)?;
        let mut proxy_path = Vec::with_capacity(path.len());
        let mut answer: Option<(Vec<V>, u32, NodeId, Via)> = None;

        for (domain, proxy) in &path {
            proxy_path.push(*proxy);
            let depth = self.hierarchy.depth(*domain);
            // 1. Cache hit?
            if use_cache {
                if let Some(cache) = self.caches.get_mut(proxy) {
                    if let Some((v, _lvl)) = cache.lookup(key, clock) {
                        answer = Some((vec![v], depth, *proxy, Via::Cache));
                        break;
                    }
                }
            }
            // 2. Local content visible at this routing level?
            if let Some(items) = self.content.get(proxy) {
                let visible: Vec<V> = items
                    .iter()
                    .filter(|it| {
                        it.key == key
                            && self.hierarchy.is_ancestor_or_self(it.access_domain, *domain)
                            // The proxy serves this item only at (or above)
                            // the level it is actually stored for.
                            && self.hierarchy.is_ancestor_or_self(*domain, it.storage_domain)
                    })
                    .map(|it| it.value.clone())
                    .collect();
                if !visible.is_empty() {
                    answer = Some((visible, depth, *proxy, Via::Direct));
                    break;
                }
            }
            // 3. A pointer stored for this level?
            if let Some(ptrs) = self.pointers.get(proxy) {
                let found = ptrs
                    .iter()
                    .find(|p| {
                        p.key == key
                            && self.hierarchy.is_ancestor_or_self(p.access_domain, *domain)
                            && self.hierarchy.is_ancestor_or_self(*domain, p.access_domain)
                    })
                    .cloned();
                if let Some(p) = found {
                    // Resolve the indirection at the storage node.
                    let values: Vec<V> = self
                        .content
                        .get(&p.storage_node)
                        .map(|items| {
                            items
                                .iter()
                                .filter(|it| it.key == key && it.access_domain == p.access_domain)
                                .map(|it| it.value.clone())
                                .collect()
                        })
                        .unwrap_or_default();
                    if !values.is_empty() {
                        answer = Some((
                            values,
                            depth,
                            *proxy,
                            Via::Pointer {
                                storage_node: p.storage_node,
                            },
                        ));
                        break;
                    }
                }
            }
        }

        let Some((values, depth, node, via)) = answer else {
            return Ok(QueryOutcome::NotFound { proxy_path });
        };

        if let (true, Some(first)) = (use_cache, values.first().cloned()) {
            // Cache the answer at every proxy crossed below the answering
            // level, annotated with the depth it serves.
            for (domain, proxy) in &path {
                let d = self.hierarchy.depth(*domain);
                if d <= depth {
                    break;
                }
                // Coordinated replacement consults the parent proxy's cache
                // for every current entry of this proxy.
                let covered_above: Vec<bool> = if self.policy.coordinated {
                    match (self.hierarchy.parent(*domain), self.caches.get(proxy)) {
                        (Some(pd), Some(cache)) => cache
                            .entries
                            .iter()
                            .map(|e| {
                                let up = self.responsible_in(e.key, pd);
                                self.caches
                                    .get(&up)
                                    .is_some_and(|c| c.entries.iter().any(|x| x.key == e.key))
                            })
                            .collect(),
                        _ => Vec::new(),
                    }
                } else {
                    Vec::new()
                };
                self.caches
                    .entry(*proxy)
                    .or_insert_with(|| NodeCache {
                        entries: Vec::new(),
                    })
                    .insert(key, first.clone(), d, clock, self.policy, &covered_above);
            }
        }

        Ok(QueryOutcome::Found {
            values,
            answered_at_depth: depth,
            answering_node: node,
            proxy_path,
            via,
        })
    }

    /// Collects up to `limit` values for `key` visible to `querier`,
    /// continuing up the hierarchy past the first hit (paper §4.1: "If the
    /// application requires a partial list of values (say one hundred
    /// results) for a given key, the routing can stop when a sufficient
    /// number of values have been found").
    ///
    /// Values are gathered in level order (most local first); pointer
    /// indirections are resolved. Caches are not consulted (a partial list
    /// is not a cacheable single answer).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownQuerier`] if `querier` is not placed.
    pub fn query_collect(
        &mut self,
        querier: NodeId,
        key: Key,
        limit: usize,
    ) -> Result<Vec<V>, StoreError> {
        let path = self.proxy_path(querier, key)?;
        let mut out: Vec<V> = Vec::new();
        for (domain, proxy) in &path {
            if out.len() >= limit {
                break;
            }
            if let Some(items) = self.content.get(proxy) {
                for it in items {
                    if out.len() >= limit {
                        break;
                    }
                    if it.key == key
                        && self
                            .hierarchy
                            .is_ancestor_or_self(it.access_domain, *domain)
                        && self
                            .hierarchy
                            .is_ancestor_or_self(*domain, it.storage_domain)
                        && !out.contains(&it.value)
                    {
                        out.push(it.value.clone());
                    }
                }
            }
            if let Some(ptrs) = self.pointers.get(proxy) {
                let resolved: Vec<V> = ptrs
                    .iter()
                    .filter(|p| {
                        p.key == key
                            && self.hierarchy.is_ancestor_or_self(p.access_domain, *domain)
                            && self.hierarchy.is_ancestor_or_self(*domain, p.access_domain)
                    })
                    .flat_map(|p| {
                        self.content
                            .get(&p.storage_node)
                            .into_iter()
                            .flatten()
                            .filter(|it| it.key == key && it.access_domain == p.access_domain)
                            .map(|it| it.value.clone())
                            .collect::<Vec<V>>()
                    })
                    .collect();
                for v in resolved {
                    if out.len() >= limit {
                        break;
                    }
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Number of cache entries currently held at `node`.
    pub fn cache_len(&self, node: NodeId) -> usize {
        self.caches.get(&node).map_or(0, |c| c.entries.len())
    }

    /// The hierarchy this store operates over.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_id::rng::Seed;

    /// root -> {cs -> {db, ai}, ee}; nodes placed explicitly.
    fn setup() -> (Hierarchy, Placement, DomainId, DomainId, DomainId, DomainId) {
        let mut h = Hierarchy::new();
        let cs = h.add_domain(h.root(), "cs");
        let db = h.add_domain(cs, "db");
        let ai = h.add_domain(cs, "ai");
        let ee = h.add_domain(h.root(), "ee");
        let p = Placement::from_pairs(
            &h,
            vec![
                (NodeId::new(100), db),
                (NodeId::new(200), db),
                (NodeId::new(300), ai),
                (NodeId::new(400), ee),
            ],
        );
        (h, p, cs, db, ai, ee)
    }

    #[test]
    fn storage_node_is_domain_responsible() {
        let (h, p, cs, db, _, _) = setup();
        let mut s: HierarchicalStore<&str> = HierarchicalStore::new(h, &p);
        // Key 250 within db's ring {100,200}: responsible = 200. Within
        // cs's ring {100,200,300}: also 200.
        let r = s
            .insert(NodeId::new(100), Key::new(250), "v", db, cs)
            .unwrap();
        assert_eq!(r.storage_node, NodeId::new(200));
        assert_eq!(r.pointer_node, Some(NodeId::new(200)));
    }

    #[test]
    fn local_query_never_needs_upper_levels() {
        let (h, p, _, db, _, _) = setup();
        let mut s = HierarchicalStore::new(h, &p);
        s.insert(NodeId::new(100), Key::new(150), "db-data", db, db)
            .unwrap();
        let out = s.query(NodeId::new(200), Key::new(150)).unwrap();
        match out {
            QueryOutcome::Found {
                answered_at_depth,
                values,
                via,
                ..
            } => {
                assert_eq!(answered_at_depth, 2, "answered inside db");
                assert_eq!(values, vec!["db-data"]);
                assert_eq!(via, Via::Direct);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn access_control_hides_content_from_outsiders() {
        let (h, p, cs, db, _, _) = setup();
        let mut s = HierarchicalStore::new(h, &p);
        // Stored in db, accessible only within cs.
        s.insert(NodeId::new(100), Key::new(150), "cs-only", db, cs)
            .unwrap();
        // ai node (inside cs) finds it...
        assert!(s.query(NodeId::new(300), Key::new(150)).unwrap().is_found());
        // ...but the ee node (outside cs) must not.
        assert!(!s.query(NodeId::new(400), Key::new(150)).unwrap().is_found());
    }

    #[test]
    fn pointer_resolution_reaches_wide_audience() {
        let (h, p, _, db, _, _) = setup();
        let root = h.root();
        let mut s = HierarchicalStore::new(h, &p);
        // Key 350: responsible in db's ring {100,200} is 200 (storage),
        // responsible in the root ring {100,200,300,400} is 300 (pointer) —
        // distinct nodes, so resolution goes through the indirection.
        s.insert(NodeId::new(100), Key::new(350), "global", db, root)
            .unwrap();
        let out = s.query(NodeId::new(400), Key::new(350)).unwrap();
        match out {
            QueryOutcome::Found {
                via,
                values,
                answered_at_depth,
                ..
            } => {
                assert_eq!(values, vec!["global"]);
                assert_eq!(answered_at_depth, 0);
                assert!(matches!(via, Via::Pointer { .. }));
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn insert_validations() {
        let (h, p, cs, db, ai, ee) = setup();
        let mut s: HierarchicalStore<&str> = HierarchicalStore::new(h, &p);
        // Publisher 400 (ee) cannot store into db.
        assert_eq!(
            s.insert(NodeId::new(400), Key::new(1), "x", db, cs)
                .unwrap_err(),
            StoreError::PublisherOutsideStorageDomain
        );
        // Access domain must contain storage domain.
        assert_eq!(
            s.insert(NodeId::new(100), Key::new(1), "x", db, ai)
                .unwrap_err(),
            StoreError::AccessDoesNotContainStorage
        );
        assert_eq!(
            s.insert(NodeId::new(100), Key::new(1), "x", db, ee)
                .unwrap_err(),
            StoreError::AccessDoesNotContainStorage
        );
        // Unknown publisher.
        assert_eq!(
            s.insert(NodeId::new(9), Key::new(1), "x", db, cs)
                .unwrap_err(),
            StoreError::UnknownPublisher
        );
        // Unknown querier.
        assert_eq!(
            s.query(NodeId::new(9), Key::new(1)).unwrap_err(),
            StoreError::UnknownQuerier
        );
    }

    #[test]
    fn queries_are_cached_at_crossed_proxies() {
        let (h, p, _, db, _, _) = setup();
        let root = h.root();
        let mut s = HierarchicalStore::new(h, &p);
        s.insert(NodeId::new(100), Key::new(150), "data", db, root)
            .unwrap();
        // ee's query crosses its leaf (ee) and resolves at the root pointer.
        let first = s.query_and_cache(NodeId::new(400), Key::new(150)).unwrap();
        assert!(first.is_found());
        // Second query from ee hits the cache at ee's proxy (node 400).
        let second = s.query_and_cache(NodeId::new(400), Key::new(150)).unwrap();
        match second {
            QueryOutcome::Found {
                via,
                answered_at_depth,
                ..
            } => {
                assert_eq!(via, Via::Cache);
                assert!(answered_at_depth >= 1, "cache hit below the root");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn cache_eviction_prefers_larger_levels() {
        let (h, p, _, db, _, _) = setup();
        let root = h.root();
        let mut s = HierarchicalStore::with_policy(
            h,
            &p,
            CachePolicy {
                capacity: 2,
                coordinated: false,
            },
        );
        // Publish three keys from db, globally accessible.
        for k in [1u64, 2, 3] {
            s.insert(NodeId::new(100), Key::new(1000 + k), "v", db, root)
                .unwrap();
        }
        // Query all three from node 400 (ee): each answer caches at the ee
        // proxy (node 400) with level = depth(ee) = 1.
        for k in [1u64, 2, 3] {
            s.query_and_cache(NodeId::new(400), Key::new(1000 + k))
                .unwrap();
        }
        // Capacity 2: one key was evicted.
        assert_eq!(s.cache_len(NodeId::new(400)), 2);
    }

    #[test]
    fn coordinated_replacement_protects_sole_copies() {
        // Stage a cache where plain LRU and coordinated replacement pick
        // different victims: at the querier's leaf proxy X, entry B is the
        // older entry (plain LRU victim) but is the only nearby copy, while
        // entry A is duplicated at the parent-level proxy. Coordinated
        // replacement must evict A and keep B.
        use canon_id::rng::{random_ids, Seed};
        let h = Hierarchy::balanced(3, 3);
        let ids = random_ids(Seed(500), 240);
        let leaves = h.leaves();
        let pairs: Vec<(NodeId, DomainId)> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, leaves[i % leaves.len()]))
            .collect();
        let p = Placement::from_pairs(&h, pairs);
        let mut s = HierarchicalStore::with_policy(
            h.clone(),
            &p,
            CachePolicy {
                capacity: 2,
                coordinated: true,
            },
        );

        // The querier and its domains.
        let querier = p.ids()[0];
        let leaf = p.leaf_of(querier).expect("placed");
        let mid = h.ancestor_at_depth(leaf, 1);
        // A remote publisher outside the querier's depth-1 domain.
        let remote = p
            .iter()
            .find(|(_, l)| h.ancestor_at_depth(*l, 1) != mid)
            .map(|(id, _)| id)
            .expect("other branch exists");
        let remote_leaf = p.leaf_of(remote).expect("placed");
        // A publisher inside the querier's depth-1 domain but another leaf.
        let local_pub = p
            .iter()
            .find(|(_, l)| *l != leaf && h.ancestor_at_depth(*l, 1) == mid)
            .map(|(id, _)| id)
            .expect("sibling leaf exists");
        let local_leaf = p.leaf_of(local_pub).expect("placed");

        // Find keys sharing the same leaf proxy X at the querier, with the
        // right publication shapes. Candidates are strided by large odd
        // constants so they cover the whole id circle — a narrow candidate
        // window would make one node responsible for every candidate and
        // the search's success a coin flip on the placement seed.
        let mut found = None;
        'search: for a_raw in 0..4000u64 {
            let key_a =
                Key::new(0xA000_0000u64.wrapping_add(a_raw.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let x = s.responsible_in(key_a, leaf);
            if s.responsible_in(key_a, mid) == x {
                continue; // A must be cached at a *distinct* mid proxy
            }
            for b_raw in 0..4000u64 {
                let key_b = Key::new(
                    0xB000_0000u64.wrapping_add(b_raw.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)),
                );
                if s.responsible_in(key_b, leaf) != x || s.responsible_in(key_b, mid) == x {
                    continue;
                }
                for c_raw in 0..4000u64 {
                    let key_c = Key::new(
                        0xC000_0000u64.wrapping_add(c_raw.wrapping_mul(0x1656_67B1_9E37_79F9)),
                    );
                    if s.responsible_in(key_c, leaf) == x && key_c != key_a && key_c != key_b {
                        found = Some((key_a, key_b, key_c, x));
                        break 'search;
                    }
                }
            }
        }
        let (key_a, key_b, key_c, x) = found.expect("staging keys exist");

        // B: stored inside mid (access mid) → found at depth 1, cached only
        // at X (depth 2). Insert FIRST so it is the LRU victim candidate.
        s.insert(local_pub, key_b, "B", local_leaf, mid).unwrap();
        // A and C: stored remotely, accessible globally → answered at the
        // root, cached at X (depth 2) and the mid proxy (depth 1).
        s.insert(remote, key_a, "A", remote_leaf, h.root()).unwrap();
        s.insert(remote, key_c, "C", remote_leaf, h.root()).unwrap();

        assert!(s.query_and_cache(querier, key_b).unwrap().is_found());
        assert!(s.query_and_cache(querier, key_a).unwrap().is_found());
        assert_eq!(s.cache_len(x), 2, "X holds B and A");
        // C's arrival forces an eviction at X. Plain LRU would evict B (the
        // older same-level entry); coordinated replacement must evict A,
        // whose copy lives on at the mid-level proxy.
        assert!(s.query_and_cache(querier, key_c).unwrap().is_found());
        match s.query_and_cache(querier, key_b).unwrap() {
            QueryOutcome::Found { via, .. } => {
                assert_eq!(via, Via::Cache, "B (sole nearby copy) must survive at X");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        // And A is still served — one level up, from the mid proxy's cache.
        match s.query_and_cache(querier, key_a).unwrap() {
            QueryOutcome::Found {
                via,
                answered_at_depth,
                ..
            } => {
                assert_eq!(via, Via::Cache);
                assert_eq!(answered_at_depth, 1, "A now comes from the parent proxy");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn multiple_values_returned_together() {
        let (h, p, _, db, _, _) = setup();
        let mut s = HierarchicalStore::new(h, &p);
        s.insert(NodeId::new(100), Key::new(150), "a", db, db)
            .unwrap();
        s.insert(NodeId::new(200), Key::new(150), "b", db, db)
            .unwrap();
        let out = s.query(NodeId::new(100), Key::new(150)).unwrap();
        match out {
            QueryOutcome::Found { mut values, .. } => {
                values.sort_unstable();
                assert_eq!(values, vec!["a", "b"]);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn not_found_reports_full_proxy_path() {
        let (h, p, _, _, _, _) = setup();
        let mut s: HierarchicalStore<&str> = HierarchicalStore::new(h, &p);
        match s.query(NodeId::new(100), Key::new(7777)).unwrap() {
            QueryOutcome::NotFound { proxy_path } => {
                // db, cs, root → three proxies.
                assert_eq!(proxy_path.len(), 3);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn query_collect_gathers_across_levels() {
        let (h, p, cs, db, ai, _) = setup();
        let root = h.root();
        let mut s = HierarchicalStore::new(h, &p);
        // Same key at three scopes: db-local, cs-wide and global.
        s.insert(NodeId::new(100), Key::new(150), "db-copy", db, db)
            .unwrap();
        s.insert(NodeId::new(100), Key::new(150), "cs-copy", db, cs)
            .unwrap();
        s.insert(NodeId::new(300), Key::new(150), "global-copy", ai, root)
            .unwrap();
        // A db querier sees all three, most local first.
        let got = s
            .query_collect(NodeId::new(200), Key::new(150), 10)
            .unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], "db-copy");
        assert!(got.contains(&"cs-copy") && got.contains(&"global-copy"));
        // The limit stops the climb early.
        let got = s.query_collect(NodeId::new(200), Key::new(150), 1).unwrap();
        assert_eq!(got, vec!["db-copy"]);
        // An outsider (ee) only sees the global copy.
        let got = s
            .query_collect(NodeId::new(400), Key::new(150), 10)
            .unwrap();
        assert_eq!(got, vec!["global-copy"]);
    }

    #[test]
    fn query_collect_dedups_pointer_and_direct_hits() {
        let (h, p, _, db, _, _) = setup();
        let root = h.root();
        let mut s = HierarchicalStore::new(h, &p);
        // One item, stored in db and pointed to at the root: a db querier
        // encounters it directly and again via the root pointer.
        s.insert(NodeId::new(100), Key::new(350), "once", db, root)
            .unwrap();
        let got = s
            .query_collect(NodeId::new(100), Key::new(350), 10)
            .unwrap();
        assert_eq!(got, vec!["once"]);
    }

    #[test]
    fn larger_population_smoke() {
        let h = Hierarchy::balanced(3, 3);
        let p = Placement::uniform(&h, 300, Seed(81));
        let leaves = h.leaves();
        let root = h.root();
        let mut s = HierarchicalStore::new(h.clone(), &p);
        // Publish one key per leaf, each stored in its publisher's depth-1
        // ancestor, globally visible.
        let mut published = Vec::new();
        for (i, (id, leaf)) in p.iter().enumerate().take(leaves.len()) {
            let key = Key::new(0x1000_0000 + i as u64 * 7919);
            let storage = h.ancestor_at_depth(leaf, 1);
            s.insert(id, key, i, storage, root).unwrap();
            published.push((key, i));
        }
        // Every node can retrieve every key.
        for &(key, v) in &published {
            let out = s.query(p.ids()[0], key).unwrap();
            match out {
                QueryOutcome::Found { values, .. } => assert_eq!(values, vec![v]),
                other => panic!("missing {key}: {other:?}"),
            }
        }
    }
}
