//! Content addressing on the 64-bit identifier space.
//!
//! Every value handed to a [`crate::StorageBackend`] is addressed by a
//! [`ContentId`]: the workspace content hash ([`canon_id::hash::hash_bytes`])
//! of its byte encoding, a point on the same 64-bit circle as node
//! identifiers and keys. Content ids buy the storage stack two properties
//! for free:
//!
//! * **integrity** — every read recomputes the hash and compares it against
//!   the id recorded at write time, so a corrupted blob (bit rot in a log
//!   file, a bad remote round trip) surfaces as
//!   [`crate::BackendError::Corrupt`] instead of silently wrong data;
//! * **dedup** — backends key their blob storage by content id, so storing
//!   the same bytes under many keys (or many replicas of the same item on
//!   one node) costs one copy.
//!
//! [`BlobValue`] is the tiny codec trait that lets typed stores (notably
//! [`crate::ReplicatedStore`]) move their values through byte-addressed
//! backends.

use canon_id::hash::hash_bytes;
use canon_id::Key;
use std::fmt;

/// The content address of a byte string: its hash on the 64-bit circle.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContentId(u64);

impl ContentId {
    /// The content id of `bytes`.
    pub fn of(bytes: &[u8]) -> ContentId {
        ContentId(hash_bytes(bytes).raw())
    }

    /// Wraps a raw 64-bit value as a content id (for decoding stored
    /// metadata; use [`ContentId::of`] when the bytes are at hand).
    pub const fn from_raw(raw: u64) -> ContentId {
        ContentId(raw)
    }

    /// The raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The id viewed as a key on the identifier circle (content ids and
    /// content keys share the space, per the paper's §4.1 hashing scheme).
    pub const fn as_key(self) -> Key {
        Key::new(self.0)
    }

    /// Whether `bytes` hashes to this id — the per-read integrity check.
    pub fn verifies(self, bytes: &[u8]) -> bool {
        ContentId::of(bytes) == self
    }
}

impl fmt::Debug for ContentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContentId({:#018x})", self.0)
    }
}

impl fmt::Display for ContentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// A value that can round-trip through a byte-addressed
/// [`crate::StorageBackend`].
///
/// `from_bytes` must invert `to_bytes` exactly; the backends rely on the
/// encoding being canonical (equal values encode to equal bytes) for
/// content-addressed dedup to see through type boundaries.
pub trait BlobValue: Clone {
    /// The canonical byte encoding of this value.
    fn to_bytes(&self) -> Vec<u8>;
    /// Decodes a value from its canonical encoding, or `None` if the bytes
    /// are not a valid encoding.
    fn from_bytes(bytes: &[u8]) -> Option<Self>;
}

macro_rules! int_blob_value {
    ($($t:ty),*) => {$(
        impl BlobValue for $t {
            fn to_bytes(&self) -> Vec<u8> {
                self.to_le_bytes().to_vec()
            }
            fn from_bytes(bytes: &[u8]) -> Option<Self> {
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}

int_blob_value!(u8, u16, u32, u64, i32, i64);

impl BlobValue for usize {
    fn to_bytes(&self) -> Vec<u8> {
        (*self as u64).to_le_bytes().to_vec()
    }
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        u64::from_bytes(bytes).map(|v| v as usize)
    }
}

impl BlobValue for String {
    fn to_bytes(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl BlobValue for Vec<u8> {
    fn to_bytes(&self) -> Vec<u8> {
        self.clone()
    }
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_ids_are_deterministic_and_sensitive() {
        let a = ContentId::of(b"hello");
        assert_eq!(a, ContentId::of(b"hello"));
        assert!(a.verifies(b"hello"));
        assert!(!a.verifies(b"hellO"));
        assert_ne!(a, ContentId::of(b"hello "));
        assert_eq!(a.as_key().raw(), a.raw());
    }

    #[test]
    fn blob_codecs_roundtrip() {
        assert_eq!(u64::from_bytes(&7u64.to_bytes()), Some(7));
        assert_eq!(i32::from_bytes(&(-3i32).to_bytes()), Some(-3));
        assert_eq!(usize::from_bytes(&41usize.to_bytes()), Some(41));
        let s = "döc".to_owned();
        assert_eq!(String::from_bytes(&s.to_bytes()), Some(s));
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_bytes(&v.to_bytes()), Some(v));
        // Wrong widths are rejected, not mangled.
        assert_eq!(u64::from_bytes(&[1, 2, 3]), None);
    }

    #[test]
    fn equal_values_share_a_content_id_across_keys() {
        // The dedup property rests on this: the id is a pure function of
        // the encoded bytes, independent of the key it is stored under.
        let x = 99u64.to_bytes();
        let y = 99u64.to_bytes();
        assert_eq!(ContentId::of(&x), ContentId::of(&y));
    }
}
