//! Flat Symphony (paper §3.1 baseline): a randomized small-world ring.
//!
//! Symphony (Manku, Bawa, Raghavan — USITS 2003) gives each node
//! `⌊log2 n⌋` long links, each drawn independently with probability
//! inversely proportional to clockwise distance (the *harmonic*
//! distribution), plus a link to its immediate successor. Greedy clockwise
//! routing takes `O(log² n / k)` hops with `k` links; with one step of
//! *lookahead* (considering neighbors' neighbors) it achieves
//! `O(log n / log log n)` — about 40% fewer hops in practice, a property
//! Cacophony inherits (§3.1).
//!
//! As with Chord, the per-ring rule is exposed in bounded form
//! ([`symphony_links_bounded`]) so the `canon` crate can assemble Cacophony
//! from it.

#![forbid(unsafe_code)]

use canon_id::{
    ring::SortedRing,
    rng::{harmonic_distance, DetRng, Seed},
    NodeId, RingDistance,
};
use canon_overlay::policy::Lookahead1;
use canon_overlay::{
    execute, GraphBuilder, NodeIndex, NullObserver, OverlayGraph, Route, RouteError,
};

/// Number of long links Symphony grants a node in a ring of `n` nodes:
/// `⌊log2 n⌋` (zero for `n < 2`).
pub fn link_budget(n: usize) -> usize {
    if n < 2 {
        0
    } else {
        (usize::BITS - 1 - n.leading_zeros()) as usize
    }
}

/// The Symphony link rule over `ring`, restricted to links strictly shorter
/// than `bound`.
///
/// Draws [`link_budget`]`(ring.len())` harmonic distances scaled to the ring
/// size; each candidate is the successor of `me + d` and is kept only if its
/// clockwise distance from `me` is below `bound` (paper §3.1: at higher
/// levels a node "retains only those links that are closer than its
/// successor at the lower level"). The successor of `me` within `ring` is
/// always appended when it is strictly closer than `bound`.
pub fn symphony_links_bounded(
    ring: &SortedRing,
    me: NodeId,
    bound: RingDistance,
    rng: &mut DetRng,
) -> Vec<NodeId> {
    let n = ring.len();
    let mut out = Vec::new();
    if n >= 2 {
        for _ in 0..link_budget(n) {
            let d = harmonic_distance(rng, n);
            let Some(s) = ring.successor(me.offset(d)) else {
                break;
            };
            if s == me {
                continue;
            }
            let dist = me.clockwise_to(s) as u128;
            if dist < bound.as_u128() && !out.contains(&s) {
                out.push(s);
            }
        }
    }
    if let Some(s) = ring.strict_successor(me) {
        if s != me && (me.clockwise_to(s) as u128) < bound.as_u128() && !out.contains(&s) {
            out.push(s);
        }
    }
    out
}

/// Builds a flat Symphony network over `ids`.
///
/// Routable with [`canon_id::metric::Clockwise`]; see
/// [`route_with_lookahead`] for the improved router.
///
/// Each node's harmonic draws come from an RNG seeded by `(seed, node)`
/// alone ([`Seed::derive_node`]), so the graph is a pure function of
/// `(ids, seed)` no matter how many threads compute it.
pub fn build_symphony(ids: &[NodeId], seed: Seed) -> OverlayGraph {
    let ring = SortedRing::new(ids.to_vec());
    let base = seed.derive("symphony");
    let per_node = canon_par::par_map(ring.as_slice(), |_, &me| {
        let mut rng = base.derive_node(me).rng();
        symphony_links_bounded(&ring, me, RingDistance::FULL_CIRCLE, &mut rng)
    });
    GraphBuilder::from_per_node_links(ring.as_slice(), &per_node)
}

/// Greedy clockwise routing with one step of lookahead (paper §3.1).
///
/// At each hop the node examines every pair (neighbor, neighbor's neighbor)
/// and takes the first step of the pair that ends closest to the
/// destination, provided the pair makes strict progress; it falls back to
/// plain greedy when lookahead offers no progress. Implemented as the
/// [`Lookahead1`] policy on the shared routing engine.
///
/// # Errors
///
/// * [`RouteError::Stuck`] if neither lookahead nor greedy can progress.
/// * [`RouteError::HopLimit`] on malformed graphs.
pub fn route_with_lookahead(
    graph: &OverlayGraph,
    from: NodeIndex,
    to: NodeIndex,
) -> Result<Route, RouteError> {
    let target = graph.id(to);
    let r = execute(graph, &Lookahead1::new(target), from, NullObserver)?.route;
    if r.target() != to {
        let at = r.target();
        return Err(RouteError::Stuck {
            at,
            remaining: graph.id(at).clockwise_to(target),
        });
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_id::metric::Clockwise;
    use canon_id::rng::random_ids;
    use canon_overlay::stats;
    use rand::Rng;

    #[test]
    fn link_budget_is_floor_log2() {
        assert_eq!(link_budget(0), 0);
        assert_eq!(link_budget(1), 0);
        assert_eq!(link_budget(2), 1);
        assert_eq!(link_budget(3), 1);
        assert_eq!(link_budget(4), 2);
        assert_eq!(link_budget(1024), 10);
        assert_eq!(link_budget(1025), 10);
    }

    #[test]
    fn links_respect_bound() {
        let ids = random_ids(Seed(1), 512);
        let ring = SortedRing::new(ids);
        let me = ring.as_slice()[100];
        let bound = RingDistance::from_u64(1u64 << 60);
        let mut rng = Seed(2).rng();
        let links = symphony_links_bounded(&ring, me, bound, &mut rng);
        for l in &links {
            assert!((me.clockwise_to(*l) as u128) < bound.as_u128());
        }
    }

    #[test]
    fn successor_always_linked_flat() {
        let ids = random_ids(Seed(3), 256);
        let ring = SortedRing::new(ids);
        let mut rng = Seed(4).rng();
        for &me in ring.as_slice().iter().take(30) {
            let links = symphony_links_bounded(&ring, me, RingDistance::FULL_CIRCLE, &mut rng);
            let succ = ring.strict_successor(me).unwrap();
            assert!(links.contains(&succ), "{me} lacks successor link");
        }
    }

    #[test]
    fn singleton_and_pair_rings() {
        let one = SortedRing::new(vec![NodeId::new(9)]);
        let mut rng = Seed(5).rng();
        assert!(
            symphony_links_bounded(&one, NodeId::new(9), RingDistance::FULL_CIRCLE, &mut rng)
                .is_empty()
        );
        let two = SortedRing::new(vec![NodeId::new(9), NodeId::new(1 << 30)]);
        let links =
            symphony_links_bounded(&two, NodeId::new(9), RingDistance::FULL_CIRCLE, &mut rng);
        assert_eq!(links, vec![NodeId::new(1 << 30)]);
    }

    #[test]
    fn symphony_routes_greedily() {
        let g = build_symphony(&random_ids(Seed(6), 512), Seed(7));
        let s = stats::hop_stats(&g, Clockwise, 300, Seed(8)).unwrap();
        // Symphony routes in O(log^2 n / log n) = O(log n)-ish hops with
        // log n links; allow a loose ceiling.
        assert!(s.mean < 25.0, "mean hops {}", s.mean);
    }

    #[test]
    fn lookahead_beats_greedy_on_average() {
        let ids = random_ids(Seed(9), 1024);
        let g = build_symphony(&ids, Seed(10));
        let mut greedy_total = 0usize;
        let mut look_total = 0usize;
        let pairs = 200;
        let mut rng = Seed(11).rng();
        for _ in 0..pairs {
            let a = NodeIndex(rng.gen_range(0..g.len()) as u32);
            let b = NodeIndex(rng.gen_range(0..g.len()) as u32);
            if a == b {
                continue;
            }
            let r1 = canon_overlay::route(&g, Clockwise, a, b).unwrap();
            let r2 = route_with_lookahead(&g, a, b).unwrap();
            greedy_total += r1.hops();
            look_total += r2.hops();
            assert_eq!(r2.target(), b);
        }
        assert!(
            (look_total as f64) < 0.9 * greedy_total as f64,
            "lookahead {look_total} vs greedy {greedy_total}"
        );
    }

    #[test]
    fn lookahead_route_to_self() {
        let g = build_symphony(&random_ids(Seed(12), 64), Seed(13));
        let n = NodeIndex(5);
        let r = route_with_lookahead(&g, n, n).unwrap();
        assert_eq!(r.hops(), 0);
    }

    #[test]
    fn construction_is_reproducible() {
        let ids = random_ids(Seed(14), 128);
        let a = build_symphony(&ids, Seed(1));
        let b = build_symphony(&ids, Seed(1));
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn degree_tracks_log_n() {
        let n = 1024;
        let g = build_symphony(&random_ids(Seed(15), n), Seed(16));
        let d = stats::DegreeStats::of(&g);
        // budget = 10 draws (with duplicates/collisions) + successor.
        assert!(
            d.summary.mean > 5.0 && d.summary.mean < 12.0,
            "mean {}",
            d.summary.mean
        );
    }
}
