//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the benchmarking surface the workspace uses: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's full statistical machinery, each benchmark runs a
//! short warmup followed by `sample_size` timed samples and prints
//! min/median/mean to stdout. That is enough to compare configurations
//! (e.g. serial vs. parallel construction) on the same machine.

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, passed to every `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(id, sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Ends the group (upstream criterion finalizes reports here).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: one untimed warmup call, then `sample_size` timed
    /// samples. The routine's output is passed through [`black_box`].
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            let dt = start.elapsed();
            black_box(out);
            self.samples.push(dt);
        }
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<44} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "{id:<44} min {:>12} · median {:>12} · mean {:>12} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        b.samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions into a callable group, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Emits a `main` that runs each group, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); this
            // shim runs everything unconditionally and ignores them.
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut calls = 0u32;
        g.bench_function("counts", |b| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        g.finish();
        // One warmup call plus three timed samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn durations_format_across_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).ends_with(" s"));
    }
}
