//! Partition-balanced identifier selection (paper §4.3).
//!
//! Purely random identifiers make the ratio of the largest to the smallest
//! partition (the arc a node owns) `Θ(log² n)` w.h.p. The paper's fix
//! keeps joins at `O(log n)` messages while pinning the ratio at a constant
//! (4 w.h.p.):
//!
//! 1. the joining node picks a random point and finds the node `n'`
//!    responsible for it;
//! 2. among the nodes sharing `n'`'s `B`-bit identifier prefix (`B` chosen
//!    so only a logarithmic number of nodes share it), it locates the
//!    **largest** partition;
//! 3. that partition is **bisected** and the midpoint becomes the new
//!    node's identifier — so partitions and identifiers form a binary
//!    tree.
//!
//! [`BalancedAllocator`] implements that scheme (and departure handling);
//! [`balanced_prefix`] implements the hierarchical refinement sketched at
//! the end of §4.3 — choosing a node's top bits to be as far as possible
//! from the other members of its (leaf) domain so that partitions stay
//! balanced at *every* level of the hierarchy.
//!
//! # Example
//!
//! ```
//! use canon_balance::BalancedAllocator;
//! use canon_id::rng::Seed;
//!
//! let mut alloc = BalancedAllocator::new();
//! let mut rng = Seed(7).rng();
//! for _ in 0..256 {
//!     alloc.join(&mut rng);
//! }
//! assert!(alloc.partition_ratio() <= 8.0);
//! ```

#![forbid(unsafe_code)]

use canon_hierarchy::Placement;
use canon_id::{ring::SortedRing, rng::DetRng, NodeId, ID_BITS, ID_SPACE};
use rand::Rng;

/// Sequential identifier allocator using bisection joins.
#[derive(Clone, Debug, Default)]
pub struct BalancedAllocator {
    ids: Vec<u64>, // sorted
}

impl BalancedAllocator {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        BalancedAllocator::default()
    }

    /// Number of live identifiers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no identifiers are allocated.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The live identifiers, ascending.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.ids.iter().map(|&r| NodeId::new(r))
    }

    /// The prefix length `B` for the current size: enough bits that an
    /// expected `O(log n)` nodes share a prefix.
    fn prefix_bits(&self) -> u32 {
        let n = self.ids.len().max(2);
        let log = (usize::BITS - n.leading_zeros()) as usize; // ≈ log2(n)+1
        let buckets = (n / log).max(1);
        (usize::BITS - 1 - buckets.leading_zeros()).min(ID_BITS - 1)
    }

    /// Adds a node using the bisection rule and returns its identifier.
    pub fn join<R: Rng>(&mut self, rng: &mut R) -> NodeId {
        let id = if self.ids.is_empty() {
            rng.gen::<u64>()
        } else {
            let probe: u64 = rng.gen();
            // Responsible node for the probe point.
            let pos = match self.ids.binary_search(&probe) {
                Ok(i) => i,
                Err(0) => self.ids.len() - 1,
                Err(i) => i - 1,
            };
            let bits = self.prefix_bits();
            let prefix = if bits == 0 {
                0
            } else {
                self.ids[pos] >> (ID_BITS - bits)
            };
            // Nodes sharing the B-bit prefix form a contiguous index range.
            let lo = if bits == 0 {
                0
            } else {
                self.ids
                    .partition_point(|&x| (x >> (ID_BITS - bits)) < prefix)
            };
            let hi = if bits == 0 {
                self.ids.len()
            } else {
                self.ids
                    .partition_point(|&x| (x >> (ID_BITS - bits)) <= prefix)
            };
            // Largest partition among them; bisect it.
            let (best, size) = (lo..hi)
                .map(|i| (i, self.gap_after(i)))
                .max_by_key(|&(_, g)| g)
                .expect("prefix group nonempty");
            let half = (size / 2) as u64;
            self.ids[best].wrapping_add(half)
        };
        match self.ids.binary_search(&id) {
            // Midpoints can collide only if a partition shrank to one
            // point; nudge (never happens at realistic scales).
            Ok(i) => {
                let nudged = id.wrapping_add(1);
                self.ids.insert(i + 1, nudged);
                return NodeId::new(nudged);
            }
            Err(i) => self.ids.insert(i, id),
        }
        NodeId::new(id)
    }

    /// Removes `id`; its partition merges into its predecessor's.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not allocated.
    pub fn leave(&mut self, id: NodeId) {
        let i = self.ids.binary_search(&id.raw()).expect("id is allocated");
        self.ids.remove(i);
    }

    /// Clockwise gap after index `i` (its partition size).
    fn gap_after(&self, i: usize) -> u128 {
        if self.ids.len() == 1 {
            return ID_SPACE;
        }
        let cur = self.ids[i];
        let next = self.ids[(i + 1) % self.ids.len()];
        u128::from(next.wrapping_sub(cur))
            + if i + 1 == self.ids.len() && next == cur {
                ID_SPACE
            } else {
                0
            }
    }

    /// The ratio of the largest to the smallest partition.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two identifiers are allocated.
    pub fn partition_ratio(&self) -> f64 {
        assert!(self.ids.len() >= 2, "ratio needs at least two partitions");
        let gaps: Vec<u128> = (0..self.ids.len()).map(|i| self.gap_after(i)).collect();
        let max = *gaps.iter().max().expect("nonempty");
        let min = *gaps.iter().min().expect("nonempty").max(&1);
        max as f64 / min as f64
    }
}

/// The partition ratio of a plain identifier set (for comparing random
/// assignment against the balanced allocator).
///
/// # Panics
///
/// Panics if fewer than two identifiers are supplied.
pub fn partition_ratio_of(ids: &SortedRing) -> f64 {
    assert!(ids.len() >= 2, "ratio needs at least two partitions");
    let gaps: Vec<u128> = (0..ids.len())
        .map(|i| ids.gap_after_index(i).as_u128())
        .collect();
    let max = *gaps.iter().max().expect("nonempty");
    let min = *gaps.iter().min().expect("nonempty").max(&1);
    max as f64 / min as f64
}

/// Chooses a `bits`-bit prefix for a node joining a domain whose existing
/// members are `members`, picking the least-occupied prefix bucket (ties
/// broken uniformly at random) — the hierarchical balance refinement of
/// §4.3 ("if the first node chose an ID with left-most bit 0, the second
/// should ensure its ID begins with 1", generalized to `log log n` bits).
///
/// # Panics
///
/// Panics if `bits` is 0 or exceeds 16 (the scheme only ever needs
/// `log log n` bits).
pub fn balanced_prefix(members: &[NodeId], bits: u32, rng: &mut DetRng) -> u64 {
    assert!(
        (1..=16).contains(&bits),
        "prefix length {bits} out of range"
    );
    let buckets = 1usize << bits;
    let mut counts = vec![0usize; buckets];
    for m in members {
        counts[m.prefix(bits) as usize] += 1;
    }
    let min = *counts.iter().min().expect("buckets nonempty");
    let candidates: Vec<usize> = (0..buckets).filter(|&b| counts[b] == min).collect();
    candidates[rng.gen_range(0..candidates.len())] as u64
}

/// Draws a full identifier whose top `bits` come from [`balanced_prefix`]
/// and whose remaining bits are uniform.
pub fn balanced_id(members: &[NodeId], bits: u32, rng: &mut DetRng) -> NodeId {
    let prefix = balanced_prefix(members, bits, rng);
    let low: u64 = rng.gen::<u64>() >> bits;
    NodeId::new((prefix << (ID_BITS - bits)) | low)
}

/// Builds a [`Placement`] whose identifiers are *hierarchically balanced*
/// (§4.3, final scheme): nodes join their leaf domains in sequence, each
/// choosing its top `log2 log2 n` bits to be as far as possible from the
/// other members of its leaf domain (least-occupied prefix bucket). The
/// paper's claim — balance in the lowest-level domains suffices for
/// balance all through the hierarchy — is validated by the
/// `hierarchy_balance` experiment binary.
///
/// `leaf_of` assigns each of the `n` nodes a leaf domain (e.g. drawn from
/// a uniform or Zipf distribution beforehand).
///
/// # Panics
///
/// Panics if `leaf_of` is empty, names a non-leaf domain, or produced
/// duplicate identifiers (astronomically unlikely).
pub fn hierarchical_balanced_placement(
    hierarchy: &canon_hierarchy::Hierarchy,
    leaf_of: &[canon_hierarchy::DomainId],
    seed: canon_id::rng::Seed,
) -> Placement {
    assert!(!leaf_of.is_empty(), "placement needs at least one node");
    let n = leaf_of.len();
    // t = ceil(log2 log2 n), clamped into [1, 8].
    let loglog = (n.max(4) as f64).log2().log2().ceil() as u32;
    let bits = loglog.clamp(1, 8);
    let mut rng = seed.derive("hier-balance").rng();
    // audit: membership-only
    let mut per_leaf: std::collections::HashMap<canon_hierarchy::DomainId, Vec<NodeId>> =
        Default::default();
    let mut pairs = Vec::with_capacity(n);
    for &leaf in leaf_of {
        let members = per_leaf.entry(leaf).or_default();
        let id = balanced_id(members, bits, &mut rng);
        members.push(id);
        pairs.push((id, leaf));
    }
    Placement::from_pairs(hierarchy, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_id::rng::{random_ids, Seed};

    #[test]
    fn bisection_keeps_ratio_constant() {
        let mut alloc = BalancedAllocator::new();
        let mut rng = Seed(1).rng();
        for _ in 0..1024 {
            alloc.join(&mut rng);
        }
        let ratio = alloc.partition_ratio();
        // Paper: ratio <= 4 w.h.p.; allow slack for the B-bit approximation.
        assert!(ratio <= 8.0, "balanced ratio {ratio}");
    }

    #[test]
    fn random_ids_have_much_larger_ratio() {
        let ids = SortedRing::new(random_ids(Seed(2), 1024));
        let ratio = partition_ratio_of(&ids);
        // Θ(log² n) in expectation — far above the balanced constant.
        assert!(ratio > 30.0, "random ratio only {ratio}");
    }

    #[test]
    fn joins_grow_monotonically_and_ids_are_unique() {
        let mut alloc = BalancedAllocator::new();
        let mut rng = Seed(3).rng();
        // audit: membership-only
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = alloc.join(&mut rng);
            assert!(seen.insert(id), "duplicate id at join {i}");
            assert_eq!(alloc.len(), i + 1);
        }
    }

    #[test]
    fn leave_removes_and_merges() {
        let mut alloc = BalancedAllocator::new();
        let mut rng = Seed(4).rng();
        let ids: Vec<NodeId> = (0..64).map(|_| alloc.join(&mut rng)).collect();
        for id in ids.iter().take(32) {
            alloc.leave(*id);
        }
        assert_eq!(alloc.len(), 32);
        // Ratio degrades after unbalanced departures but stays bounded
        // by the binary-tree structure (facts about arbitrary removals
        // from a bisection tree: gaps are powers of two apart).
        assert!(alloc.partition_ratio() <= 64.0);
    }

    #[test]
    #[should_panic(expected = "id is allocated")]
    fn leave_unknown_id_panics() {
        let mut alloc = BalancedAllocator::new();
        let mut rng = Seed(5).rng();
        alloc.join(&mut rng);
        alloc.leave(NodeId::new(123456));
    }

    #[test]
    fn churn_preserves_reasonable_balance() {
        let mut alloc = BalancedAllocator::new();
        let mut rng = Seed(6).rng();
        let mut live: Vec<NodeId> = (0..256).map(|_| alloc.join(&mut rng)).collect();
        for round in 0..500 {
            if round % 3 == 0 && live.len() > 64 {
                let idx = rng.gen_range(0..live.len());
                alloc.leave(live.swap_remove(idx));
            } else {
                live.push(alloc.join(&mut rng));
            }
        }
        let random_equivalent =
            partition_ratio_of(&SortedRing::new(random_ids(Seed(7), alloc.len())));
        assert!(
            alloc.partition_ratio() < random_equivalent,
            "churned balanced ratio {} not better than random {random_equivalent}",
            alloc.partition_ratio()
        );
    }

    #[test]
    fn balanced_prefix_picks_empty_buckets_first() {
        let mut rng = Seed(8).rng();
        // One existing member with prefix 0 (2 bits): candidates are 1,2,3.
        let members = vec![NodeId::new(0)];
        for _ in 0..20 {
            let p = balanced_prefix(&members, 2, &mut rng);
            assert_ne!(p, 0);
        }
    }

    #[test]
    fn balanced_prefix_spreads_sequential_joins() {
        let mut rng = Seed(9).rng();
        let mut members: Vec<NodeId> = Vec::new();
        for _ in 0..64 {
            members.push(balanced_id(&members, 3, &mut rng));
        }
        let mut counts = [0usize; 8];
        for m in &members {
            counts[m.prefix(3) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 8), "buckets {counts:?}");
    }

    #[test]
    fn balanced_id_prefix_matches_choice() {
        let mut rng = Seed(10).rng();
        let members = vec![NodeId::new(u64::MAX)]; // prefix 1 (1 bit)
        let id = balanced_id(&members, 1, &mut rng);
        assert_eq!(id.prefix(1), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn balanced_prefix_rejects_zero_bits() {
        let mut rng = Seed(11).rng();
        balanced_prefix(&[], 0, &mut rng);
    }

    #[test]
    fn hierarchical_placement_balances_leaf_prefixes() {
        use canon_hierarchy::Hierarchy;
        let h = Hierarchy::balanced(4, 2);
        let leaves = h.leaves();
        let mut rng = Seed(20).rng();
        let leaf_of: Vec<_> = (0..512)
            .map(|_| leaves[rng.gen_range(0..leaves.len())])
            .collect();
        let p = hierarchical_balanced_placement(&h, &leaf_of, Seed(21));
        assert_eq!(p.len(), 512);
        // Within each leaf, prefix buckets differ by at most one.
        let m = canon_hierarchy::DomainMembership::build(&h, &p);
        let bits = 4u32; // ceil(log2 log2 512) = ceil(log2 9.0) = 4
        for leaf in leaves {
            let ring = m.ring(leaf);
            let mut counts = vec![0usize; 1 << bits];
            for &id in ring.as_slice() {
                counts[id.prefix(bits) as usize] += 1;
            }
            let max = counts.iter().max().unwrap();
            let min = counts.iter().min().unwrap();
            assert!(max - min <= 1, "leaf {leaf} buckets {counts:?}");
        }
    }

    #[test]
    fn hierarchical_placement_tightens_bucket_occupancy_at_all_levels() {
        // The scheme balances *prefix-bucket* occupancy (which drives
        // per-level partition balance and degree variance), not the global
        // max/min arc ratio — lower identifier bits remain random.
        use canon_hierarchy::{DomainMembership, Hierarchy};
        let h = Hierarchy::balanced(4, 2);
        let leaves = h.leaves();
        let mut rng = Seed(22).rng();
        let n = 1024;
        let leaf_of: Vec<_> = (0..n)
            .map(|_| leaves[rng.gen_range(0..leaves.len())])
            .collect();
        let bal = hierarchical_balanced_placement(&h, &leaf_of, Seed(23));
        let bits = 4u32;
        let spread = |ids: &[NodeId]| {
            let mut counts = vec![0isize; 1 << bits];
            for id in ids {
                counts[id.prefix(bits) as usize] += 1;
            }
            counts.iter().max().unwrap() - counts.iter().min().unwrap()
        };
        // Global spread: every leaf is within ±1 per bucket, so the global
        // spread is at most the number of leaves.
        let bal_spread = spread(bal.ids());
        assert!(
            bal_spread <= leaves.len() as isize,
            "global spread {bal_spread}"
        );
        let rnd_spread = spread(&random_ids(Seed(24), n));
        assert!(
            bal_spread < rnd_spread,
            "balanced spread {bal_spread} not tighter than random {rnd_spread}"
        );
        // And per depth-1 domain the spread stays within the leaf bound too.
        let m = DomainMembership::build(&h, &bal);
        for d in h.domains_at_depth(1) {
            let s = spread(m.ring(d).as_slice());
            assert!(s <= 1, "domain {d} spread {s}");
        }
    }

    #[test]
    fn first_join_is_random_point() {
        let mut a = BalancedAllocator::new();
        let mut b = BalancedAllocator::new();
        let ida = a.join(&mut Seed(12).rng());
        let idb = b.join(&mut Seed(13).rng());
        assert_ne!(ida, idb);
        assert!(a.partition_ratio_checked().is_none());
    }

    impl BalancedAllocator {
        fn partition_ratio_checked(&self) -> Option<f64> {
            (self.ids.len() >= 2).then(|| self.partition_ratio())
        }
    }
}
