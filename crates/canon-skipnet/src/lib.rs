//! SkipNet (Harvey et al., USITS 2003) — the related-work system the paper
//! compares against in §6.
//!
//! SkipNet gives every node a *name* (DNS-style, sorted lexicographically)
//! and a random *numeric* identifier. Nodes form a skip graph: the
//! level-`h` rings partition nodes by the first `h` bits of their numeric
//! identifier, and every node keeps a name-order successor in each of its
//! rings (`O(log n)` pointers w.h.p.). Routing by name uses the
//! highest-level pointer that does not overshoot, visiting only nodes whose
//! names lie between source and destination — *explicit path locality* for
//! name-prefix domains. Content can be *constrained-load-balanced* (CLB):
//! a key `domain!suffix` hashes only its suffix and is stored within the
//! name segment of `domain` — at the price of modifying the key, which the
//! paper contrasts with Canon's unmodified-key storage domains (§6).
//!
//! The §6 claims reproduced here and in `canon-bench --bin skipnet_compare`:
//!
//! * SkipNet's name routing has path locality (tested below);
//! * but *inter-domain path convergence* is weaker than Canon's: routes
//!   from one domain to an outside destination spread over many exit
//!   nodes, so Canon-style proxy caching has no single anchor (measured).
//!
//! # Example
//!
//! ```
//! use canon_id::rng::Seed;
//! use canon_skipnet::SkipNet;
//!
//! let names: Vec<String> = (0..32).map(|i| format!("org/h{i:02}")).collect();
//! let net = SkipNet::build(names, Seed(1));
//! let r = net.route_by_name(0, 20)?;
//! // Name routing visits only names between source and destination.
//! assert!(r.path().iter().all(|i| i.index() <= 20));
//! # Ok::<(), canon_overlay::RouteError>(())
//! ```

#![forbid(unsafe_code)]

use canon_id::{rng::Seed, NodeId, ID_BITS};
use canon_overlay::{GraphBuilder, NodeIndex, OverlayGraph, Route, RouteError};
use rand::Rng;

/// A SkipNet overlay over named nodes.
///
/// Node indices (and [`NodeIndex`] in routes) refer to nodes in ascending
/// *name* order.
#[derive(Clone, Debug)]
pub struct SkipNet {
    names: Vec<String>,
    numerics: Vec<NodeId>,
    /// `succ[h][i]` = index of the name-order successor of node `i` within
    /// its level-`h` ring (nodes sharing `h` numeric prefix bits).
    succ: Vec<Vec<usize>>,
    levels: u32,
}

impl SkipNet {
    /// Builds a SkipNet over `names`, assigning random numeric identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty or contains duplicates.
    pub fn build(mut names: Vec<String>, seed: Seed) -> Self {
        assert!(!names.is_empty(), "a SkipNet needs at least one node");
        names.sort();
        assert!(
            names.windows(2).all(|w| w[0] != w[1]),
            "node names must be unique"
        );
        let n = names.len();
        let mut rng = seed.derive("skipnet-numeric").rng();
        let numerics: Vec<NodeId> = (0..n).map(|_| NodeId::new(rng.gen())).collect();

        // Ring pointers per level until every ring is a singleton.
        let mut succ: Vec<Vec<usize>> = Vec::new();
        let mut level = 0u32;
        loop {
            let mut s = vec![usize::MAX; n];
            let mut any_ring = false;
            use std::collections::BTreeMap;
            let mut groups: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
            // Walking indices in order yields name order within each group.
            for (i, num) in numerics.iter().enumerate() {
                groups.entry(num.prefix(level)).or_default().push(i);
            }
            for members in groups.values() {
                if members.len() > 1 {
                    any_ring = true;
                }
                for (k, &i) in members.iter().enumerate() {
                    s[i] = members[(k + 1) % members.len()];
                }
            }
            succ.push(s);
            level += 1;
            if !any_ring || level >= ID_BITS {
                break;
            }
        }

        SkipNet {
            names,
            numerics,
            succ,
            levels: level,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// A SkipNet is never empty (construction rejects empty name lists).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of ring levels (the level-0 root ring counts as one).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The name of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// The numeric identifier of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn numeric(&self, i: usize) -> NodeId {
        self.numerics[i]
    }

    /// The index of the node with exactly `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.binary_search_by(|x| x.as_str().cmp(name)).ok()
    }

    /// Name-order (clockwise) distance from node `a` to node `b`.
    fn name_distance(&self, a: usize, b: usize) -> usize {
        (b + self.len() - a) % self.len()
    }

    /// Routes from node `from` to node `to` by name, using the highest-
    /// level pointer that does not overshoot (SkipNet's `routeByName`,
    /// restricted to the clockwise direction).
    ///
    /// # Errors
    ///
    /// * [`RouteError::HopLimit`] on malformed structures (cannot occur for
    ///   networks built by [`SkipNet::build`]).
    pub fn route_by_name(&self, from: usize, to: usize) -> Result<Route, RouteError> {
        const HOP_LIMIT: usize = 65536;
        let mut path = vec![NodeIndex(from as u32)];
        let mut cur = from;
        while cur != to {
            let remaining = self.name_distance(cur, to);
            // Highest level whose successor does not overshoot. Level 0 is
            // the full ring whose successor advances by exactly 1, so a
            // qualifying pointer always exists.
            let mut next = None;
            for h in (0..self.succ.len()).rev() {
                let s = self.succ[h][cur];
                if s == usize::MAX || s == cur {
                    continue;
                }
                if self.name_distance(cur, s) <= remaining {
                    next = Some(s);
                    break;
                }
            }
            let next = next.expect("level-0 successor always qualifies");
            path.push(NodeIndex(next as u32));
            cur = next;
            if path.len() > HOP_LIMIT {
                return Err(RouteError::HopLimit { limit: HOP_LIMIT });
            }
        }
        Ok(Route::from_path(path))
    }

    /// Routes from `from` to the node responsible for `name`: the node with
    /// the greatest name `<=` the target, wrapping.
    ///
    /// # Errors
    ///
    /// See [`SkipNet::route_by_name`].
    pub fn route_to_name(&self, from: usize, name: &str) -> Result<Route, RouteError> {
        let idx = match self.names.binary_search_by(|x| x.as_str().cmp(name)) {
            Ok(i) => i,
            Err(0) => self.len() - 1,
            Err(i) => i - 1,
        };
        self.route_by_name(from, idx)
    }

    /// The node storing a constrained-load-balanced key `domain!suffix`:
    /// among the nodes whose names start with `domain_prefix`, the one
    /// whose numeric identifier is XOR-closest to the suffix hash.
    ///
    /// Returns `None` when no node carries the prefix.
    pub fn clb_responsible(&self, domain_prefix: &str, suffix_hash: NodeId) -> Option<usize> {
        let lo = self.names.partition_point(|x| x.as_str() < domain_prefix);
        let hi = lo
            + self.names[lo..]
                .iter()
                .take_while(|x| x.starts_with(domain_prefix))
                .count();
        (lo..hi).min_by_key(|&i| self.numerics[i].xor_to(suffix_hash))
    }

    /// Exports the pointer structure as an [`OverlayGraph`] for degree
    /// statistics. Graph indices equal SkipNet name-order indices; graph
    /// identifiers are the numeric IDs.
    pub fn graph(&self) -> OverlayGraph {
        let mut b = GraphBuilder::new();
        for &num in &self.numerics {
            b.add_node(num);
        }
        for level in &self.succ {
            for (i, &s) in level.iter().enumerate() {
                if s != usize::MAX && s != i {
                    b.add_link_by_index(NodeIndex(i as u32), NodeIndex(s as u32));
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canon_id::hash::hash_name;

    fn names(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("org/site{:03}/host{:03}", i / 10, i % 10))
            .collect()
    }

    #[test]
    fn build_sorts_names_and_levels_are_logarithmic() {
        let net = SkipNet::build(names(200), Seed(1));
        assert_eq!(net.len(), 200);
        assert!(net.name(0) < net.name(199));
        assert!(
            net.levels() >= 6 && net.levels() <= 24,
            "levels {}",
            net.levels()
        );
        assert!(!net.is_empty());
        assert_eq!(net.index_of("org/site000/host000"), Some(0));
        assert_eq!(net.index_of("zzz"), None);
        let _ = net.numeric(0);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_names_rejected() {
        SkipNet::build(vec!["a".into(), "a".into()], Seed(0));
    }

    #[test]
    fn level0_ring_is_the_full_name_ring() {
        let net = SkipNet::build(names(50), Seed(2));
        for i in 0..50 {
            assert_eq!(net.succ[0][i], (i + 1) % 50);
        }
    }

    #[test]
    fn name_routing_reaches_every_destination() {
        let net = SkipNet::build(names(300), Seed(3));
        for (a, b) in [(0usize, 299), (5, 100), (250, 10), (7, 8)] {
            let r = net.route_by_name(a, b).unwrap();
            assert_eq!(r.target(), NodeIndex(b as u32));
            assert!(r.hops() <= 40, "{} hops", r.hops());
        }
    }

    #[test]
    fn name_routing_is_logarithmic_on_average() {
        let net = SkipNet::build(names(512), Seed(4));
        let mut rng = Seed(5).rng();
        let mut total = 0usize;
        let trials = 300;
        for _ in 0..trials {
            let a = rng.gen_range(0..512);
            let b = rng.gen_range(0..512);
            if a == b {
                continue;
            }
            total += net.route_by_name(a, b).unwrap().hops();
        }
        let mean = total as f64 / trials as f64;
        assert!(mean < 2.5 * (512f64).log2(), "mean hops {mean}");
    }

    #[test]
    fn name_routing_has_path_locality() {
        // The route from a to b (clockwise by name) visits only nodes in
        // the clockwise name interval [a, b] — SkipNet's locality property.
        let net = SkipNet::build(names(400), Seed(6));
        let n = net.len();
        for (a, b) in [(20usize, 180), (100, 399), (350, 20)] {
            let r = net.route_by_name(a, b).unwrap();
            for w in r.path() {
                let i = w.index();
                let pos = (i + n - a) % n;
                let span = (b + n - a) % n;
                assert!(pos <= span, "route visited {i} outside [{a},{b}]");
            }
        }
    }

    #[test]
    fn intra_domain_routes_stay_in_the_name_prefix() {
        let net = SkipNet::build(names(300), Seed(7));
        let site = "org/site003/";
        let members: Vec<usize> = (0..net.len())
            .filter(|&i| net.name(i).starts_with(site))
            .collect();
        assert!(members.len() >= 2);
        let r = net
            .route_by_name(members[0], *members.last().expect("nonempty"))
            .unwrap();
        for w in r.path() {
            assert!(net.name(w.index()).starts_with(site), "left the site");
        }
    }

    #[test]
    fn route_to_name_finds_responsible() {
        let net = SkipNet::build(names(100), Seed(8));
        let r = net.route_to_name(0, "org/site005/host005").unwrap();
        assert_eq!(net.name(r.target().index()), "org/site005/host005");
        // A name between two nodes maps to its predecessor.
        let r = net.route_to_name(0, "org/site005/host005a").unwrap();
        assert_eq!(net.name(r.target().index()), "org/site005/host005");
        // A name before every node wraps to the last node.
        let r = net.route_to_name(3, "aaa").unwrap();
        assert_eq!(r.target().index(), 99);
    }

    #[test]
    fn clb_stays_inside_the_domain_segment() {
        let net = SkipNet::build(names(300), Seed(9));
        for suffix in ["alpha", "beta", "gamma"] {
            let h = hash_name(suffix).as_point();
            let holder = net.clb_responsible("org/site007/", h).unwrap();
            assert!(net.name(holder).starts_with("org/site007/"));
        }
        assert!(net
            .clb_responsible("org/nonexistent/", NodeId::new(1))
            .is_none());
    }

    #[test]
    fn graph_export_has_logarithmic_degree() {
        let net = SkipNet::build(names(512), Seed(10));
        let g = net.graph();
        let d = canon_overlay::stats::DegreeStats::of(&g);
        // One successor per level the node participates in: ~log2 n.
        assert!(
            d.summary.mean > 4.0 && d.summary.mean < 16.0,
            "mean degree {}",
            d.summary.mean
        );
    }

    #[test]
    fn build_is_reproducible() {
        let a = SkipNet::build(names(100), Seed(11));
        let b = SkipNet::build(names(100), Seed(11));
        assert_eq!(a.numerics, b.numerics);
        assert_eq!(a.succ, b.succ);
    }

    #[test]
    fn singleton_network() {
        let net = SkipNet::build(vec!["only".into()], Seed(12));
        let r = net.route_by_name(0, 0).unwrap();
        assert_eq!(r.hops(), 0);
    }
}
