//! Deterministic data-parallel execution for the construction pipeline.
//!
//! This crate is the workspace's stand-in for rayon (unavailable in the
//! offline build environment): a scoped-thread fork/join map over slices
//! with three properties the construction pipeline depends on:
//!
//! 1. **Determinism** — [`par_map`] splits the input into contiguous
//!    chunks, one per worker, and concatenates the per-chunk outputs in
//!    chunk order. The result is element-for-element identical to the
//!    serial `items.iter().map(f).collect()` for any thread count, so a
//!    pure `f` makes parallel construction bit-for-bit reproducible.
//! 2. **Scoped configuration** — the worker count is a process-wide
//!    default ([`set_global_threads`]) that can be overridden for a region
//!    with [`with_threads`], which benches use to compare serial vs.
//!    parallel runs in one process.
//! 3. **No nested fan-out** — workers run their chunk with the thread
//!    override pinned to 1, so a parallel constructor calling another
//!    parallel helper cannot multiply threads.
//!
//! ```
//! let squares = canon_par::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```
//!
//! The crate is the only one in the workspace allowed to grow `unsafe`
//! blocks (it would be the place for hand-rolled synchronization); per repo
//! policy each such block must carry a `// SAFETY:` comment, and unsafe
//! operations inside unsafe fns still need their own blocks.

#![deny(unsafe_op_in_unsafe_fn)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default worker count; 0 means "use all available cores".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread override; 0 means "fall back to the global default".
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Sets the process-wide default worker count. `0` restores the default of
/// one worker per available core.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// The worker count [`par_map`] would use right now (always ≥ 1): the
/// innermost [`with_threads`] override, else the global default, else the
/// number of available cores.
pub fn current_threads() -> usize {
    let local = LOCAL_THREADS.with(Cell::get);
    if local != 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global != 0 {
        return global;
    }
    available_cores()
}

/// The number of cores the OS reports as available to this process.
pub fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs `f` with the worker count pinned to `n` on this thread (and any
/// [`par_map`] it calls). `0` means "all available cores".
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    LOCAL_THREADS.with(|cell| {
        let prev = cell.get();
        cell.set(if n == 0 { available_cores() } else { n });
        let result = f();
        cell.set(prev);
        result
    })
}

/// Maps `f` over `items` in parallel, preserving order.
///
/// `f` receives each element's index and a reference to it. The output is
/// identical to `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()`
/// regardless of the worker count; only the wall-clock changes. Workers
/// run with the thread override pinned to 1, so nested [`par_map`] calls
/// inside `f` degrade gracefully to serial loops instead of oversubscribing.
///
/// # Panics
///
/// Propagates the first panic raised by `f` (scoped threads re-raise on
/// join).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = current_threads().min(items.len()).max(1);
    if threads == 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }

    let bounds = chunk_bounds(items.len(), threads);
    let mut out: Vec<Vec<U>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .windows(2)
            .map(|w| {
                let (start, end) = (w[0], w[1]);
                let chunk = &items[start..end];
                let f = &f;
                scope.spawn(move || {
                    with_threads(1, || {
                        chunk
                            .iter()
                            .enumerate()
                            .map(|(i, x)| f(start + i, x))
                            .collect::<Vec<U>>()
                    })
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(chunk) => out.push(chunk),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out.into_iter().flatten().collect()
}

/// The chunk boundaries [`par_map`] uses for `len` items on `threads`
/// workers: `threads + 1` offsets with `bounds[w]..bounds[w + 1]` the
/// contiguous range worker `w` owns. Chunks are sized so every worker gets
/// within one item of the same load, and chunk order equals input order.
///
/// Exposed so schedule-exploration harnesses (the `canon-audit` mini-loom)
/// can model exactly the fork/join structure the real executor uses.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn chunk_bounds(len: usize, threads: usize) -> Vec<usize> {
    assert!(threads > 0, "at least one worker is required");
    let base = len / threads;
    let extra = len % threads;
    let mut bounds = Vec::with_capacity(threads + 1);
    let mut at = 0;
    bounds.push(0);
    for w in 0..threads {
        at += base + usize::from(w < extra);
        bounds.push(at);
    }
    bounds
}

/// Maps `f` over the index range `0..n` in parallel, preserving order.
///
/// Convenience wrapper over [`par_map`] for loops that index into shared
/// state instead of iterating a slice.
pub fn par_map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_for_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for t in [1, 2, 3, 4, 8, 300] {
            let got = with_threads(t, || par_map(&items, |_, &x| x * 3 + 1));
            assert_eq!(got, expect, "threads = {t}");
        }
    }

    #[test]
    fn indices_match_positions() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = with_threads(2, || par_map(&items, |i, &s| format!("{i}{s}")));
        assert_eq!(got, vec!["0a", "1b", "2c", "3d", "4e"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn with_threads_nests_and_restores() {
        with_threads(4, || {
            assert_eq!(current_threads(), 4);
            with_threads(2, || assert_eq!(current_threads(), 2));
            assert_eq!(current_threads(), 4);
        });
    }

    #[test]
    fn workers_do_not_fan_out_recursively() {
        let outer: Vec<usize> = (0..8).collect();
        let nested_counts = with_threads(4, || par_map(&outer, |_, _| current_threads()));
        // Inside a parallel region every worker sees a pinned count of 1
        // (unless the whole map ran serially on a 1-core host, where the
        // outer override of 4 is still in force — but then min(len) > 1
        // workers were spawned anyway since 4 > 1).
        assert!(nested_counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn chunk_bounds_cover_input_in_order() {
        for len in 0..20usize {
            for threads in 1..8usize {
                let b = chunk_bounds(len, threads);
                assert_eq!(b.len(), threads + 1);
                assert_eq!(b[0], 0);
                assert_eq!(*b.last().unwrap(), len);
                assert!(b.windows(2).all(|w| w[0] <= w[1]));
                // Balanced: chunk sizes differ by at most one.
                let sizes: Vec<usize> = b.windows(2).map(|w| w[1] - w[0]).collect();
                let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "len={len} threads={threads}: {sizes:?}");
            }
        }
    }

    #[test]
    fn range_map_matches_loop() {
        let got = with_threads(3, || par_map_range(10, |i| i * i));
        let expect: Vec<usize> = (0..10).map(|i| i * i).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(&items, |_, &x| {
                    assert!(x != 40, "boom");
                    x
                })
            })
        });
        assert!(result.is_err());
    }
}
