//! Umbrella crate for the Canon reproduction: re-exports every workspace
//! crate so integration tests and examples can use one dependency.

#![forbid(unsafe_code)]

pub use canon;
pub use canon_balance;
pub use canon_can;
pub use canon_chord;
pub use canon_hierarchy;
pub use canon_id;
pub use canon_kademlia;
pub use canon_multicast;
pub use canon_netsim;
pub use canon_overlay;
pub use canon_pastry;
pub use canon_sim;
pub use canon_skipnet;
pub use canon_store;
pub use canon_symphony;
pub use canon_topology;
pub use canon_workloads;
